#include "src/anneal/schedule.h"

#include <algorithm>

#include "src/util/error.h"

namespace vodrep {
namespace {

class GeometricCooling final : public CoolingSchedule {
 public:
  explicit GeometricCooling(double alpha) : alpha_(alpha) {
    require(alpha > 0.0 && alpha < 1.0,
            "geometric_cooling: alpha must be in (0, 1)");
  }
  [[nodiscard]] std::string name() const override { return "geometric"; }
  [[nodiscard]] double next(double temperature,
                            const CoolingStepInfo&) const override {
    return alpha_ * temperature;
  }

 private:
  double alpha_;
};

class LinearCooling final : public CoolingSchedule {
 public:
  explicit LinearCooling(double delta) : delta_(delta) {
    require(delta > 0.0, "linear_cooling: delta must be positive");
  }
  [[nodiscard]] std::string name() const override { return "linear"; }
  [[nodiscard]] double next(double temperature,
                            const CoolingStepInfo&) const override {
    return std::max(0.0, temperature - delta_);
  }

 private:
  double delta_;
};

class AdaptiveCooling final : public CoolingSchedule {
 public:
  AdaptiveCooling(double alpha_fast, double alpha_mid, double alpha_slow,
                  double hot_acceptance, double cold_acceptance)
      : alpha_fast_(alpha_fast),
        alpha_mid_(alpha_mid),
        alpha_slow_(alpha_slow),
        hot_acceptance_(hot_acceptance),
        cold_acceptance_(cold_acceptance) {
    require(alpha_fast > 0.0 && alpha_fast < 1.0 && alpha_mid > 0.0 &&
                alpha_mid < 1.0 && alpha_slow > 0.0 && alpha_slow < 1.0,
            "adaptive_cooling: alphas must be in (0, 1)");
    require(hot_acceptance > cold_acceptance && cold_acceptance >= 0.0 &&
                hot_acceptance <= 1.0,
            "adaptive_cooling: need 0 <= cold < hot <= 1");
  }
  [[nodiscard]] std::string name() const override { return "adaptive"; }
  [[nodiscard]] double next(double temperature,
                            const CoolingStepInfo& info) const override {
    const double acceptance =
        info.moves == 0 ? 1.0
                        : static_cast<double>(info.accepted) /
                              static_cast<double>(info.moves);
    if (acceptance >= hot_acceptance_) return alpha_fast_ * temperature;
    if (acceptance <= cold_acceptance_) return alpha_slow_ * temperature;
    return alpha_mid_ * temperature;
  }

 private:
  double alpha_fast_;
  double alpha_mid_;
  double alpha_slow_;
  double hot_acceptance_;
  double cold_acceptance_;
};

}  // namespace

std::unique_ptr<CoolingSchedule> geometric_cooling(double alpha) {
  return std::make_unique<GeometricCooling>(alpha);
}

std::unique_ptr<CoolingSchedule> linear_cooling(double delta) {
  return std::make_unique<LinearCooling>(delta);
}

std::unique_ptr<CoolingSchedule> adaptive_cooling(double alpha_fast,
                                                  double alpha_mid,
                                                  double alpha_slow,
                                                  double hot_acceptance,
                                                  double cold_acceptance) {
  return std::make_unique<AdaptiveCooling>(alpha_fast, alpha_mid, alpha_slow,
                                           hot_acceptance, cold_acceptance);
}

}  // namespace vodrep
