// Cooling schedules for the simulated-annealing engine.
//
// The paper's scalable-bit-rate solver is built on the parsa library; our
// substitute exposes the same problem-facing hooks (cost, initial solution,
// neighborhood) and keeps the annealing mechanics — including the cooling
// schedule — pluggable, mirroring parsa's "generic decisions are transparent
// to users" design.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace vodrep {

/// Per-temperature feedback available to adaptive schedules.
struct CoolingStepInfo {
  std::size_t step = 0;            ///< temperature steps completed so far
  std::size_t moves = 0;           ///< moves proposed at the last temperature
  std::size_t accepted = 0;        ///< moves accepted at the last temperature
  double best_cost = 0.0;          ///< best cost seen so far
  double current_cost = 0.0;       ///< cost at the end of the last temperature
};

/// Strategy interface: maps the current temperature (plus feedback) to the
/// next temperature.  Implementations must be strictly decreasing toward 0
/// for the annealer to terminate.
class CoolingSchedule {
 public:
  virtual ~CoolingSchedule() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual double next(double temperature,
                                    const CoolingStepInfo& info) const = 0;
};

/// Classic geometric cooling: T <- alpha * T with alpha in (0, 1).
[[nodiscard]] std::unique_ptr<CoolingSchedule> geometric_cooling(double alpha);

/// Linear cooling: T <- T - delta (floored at 0).  Requires delta > 0.
[[nodiscard]] std::unique_ptr<CoolingSchedule> linear_cooling(double delta);

/// Acceptance-adaptive geometric cooling: cools fast (alpha_fast) while the
/// acceptance ratio is above `hot_acceptance` (random-walk regime), slow
/// (alpha_slow) once acceptance falls below `cold_acceptance` (careful
/// descent), and at alpha_mid in between.  A pragmatic stand-in for parsa's
/// adaptive schedules.
[[nodiscard]] std::unique_ptr<CoolingSchedule> adaptive_cooling(
    double alpha_fast = 0.80, double alpha_mid = 0.95, double alpha_slow = 0.99,
    double hot_acceptance = 0.8, double cold_acceptance = 0.2);

}  // namespace vodrep
