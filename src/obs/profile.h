// Hierarchical run profiler: phase-level wall + thread-CPU accounting.
//
// VODREP_PROFILE_PHASE("name") opens a phase scope on the calling thread;
// scopes nest, building one phase tree per thread (keyed by the obs
// thread_slot).  Each node accumulates wall time (obs::steady_now_ns),
// thread CPU time (obs::thread_cpu_now_ns, i.e. CLOCK_THREAD_CPUTIME_ID),
// and an entry count.  snapshot() merges the per-thread trees into one
// deterministic forest — nodes are matched by phase-name path and children
// sorted by name, so the merged profile is identical regardless of which
// threads ran which phases in what order — and stamps the process max-RSS.
//
// Like the trace recorder, the profiler is off by default: a ProfilePhase
// on a disabled profiler costs one relaxed atomic load and performs no
// allocation or clock read (tests/profile_test.cc pins this), so phase
// scopes can stay in the sharded-simulation and annealing hot loops.
//
// Contract: enter/leave run lock-free on the owning thread's tree after a
// one-time registration; snapshot()/clear() require phase activity on other
// threads to be quiescent (scopes closed, worker pools idle), the same
// quiesce-then-export discipline the metrics and trace layers use.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/thread_annotations.h"

namespace vodrep::obs {

class JsonValue;

/// One node of the merged phase forest.
struct PhaseStats {
  std::string name;
  std::uint64_t wall_ns = 0;  ///< total wall time inside the phase
  std::uint64_t cpu_ns = 0;   ///< total CPU time of the threads in the phase
  std::uint64_t count = 0;    ///< times the phase was entered
  std::vector<PhaseStats> children;  ///< sorted by name
};

/// Merged, quiescent view of a profiler.
struct ProfileSnapshot {
  std::vector<PhaseStats> phases;  ///< root phases, sorted by name
  std::uint64_t max_rss_kb = 0;    ///< process high-water RSS at snapshot
};

class RunProfiler {
 public:
  RunProfiler() = default;
  RunProfiler(const RunProfiler&) = delete;
  RunProfiler& operator=(const RunProfiler&) = delete;

  static RunProfiler& global();

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Opens/closes a phase on the calling thread.  Callers pair them via
  /// ProfilePhase; `name` must have static storage duration (literals).
  void enter(const char* name) noexcept VODREP_EXCLUDES(mutex_);
  void leave() noexcept;

  /// Deterministic merged view (see file comment for the merge order).
  [[nodiscard]] ProfileSnapshot snapshot() const VODREP_EXCLUDES(mutex_);

  /// Versioned JSON export: {"profile_version":1,"max_rss_kb":...,
  /// "trace":{"recorded":...,"dropped":...},"phases":[{name,wall_ns,cpu_ns,
  /// count,children},...]}.  The trace block carries the trace-buffer
  /// health counters so a profile is self-describing about event loss.
  [[nodiscard]] JsonValue to_json() const VODREP_EXCLUDES(mutex_);

  /// Drops all per-thread trees.  Requires quiescent phase activity.
  void clear() VODREP_EXCLUDES(mutex_);

  /// Number of threads that have recorded at least one phase since the last
  /// clear() — stays 0 while the profiler is disabled (the "disabled
  /// profiler allocates nothing" contract).
  [[nodiscard]] std::size_t threads_registered() const VODREP_EXCLUDES(mutex_);

  static constexpr int kProfileVersion = 1;

  /// Per-thread phase tree; defined in profile.cc (public so the merge
  /// helpers there can name it — not part of the API).
  struct ThreadTree;

 private:
  /// The calling thread's tree, registering it on first use (mutex only on
  /// that first call per thread per clear-epoch).
  ThreadTree* local_tree() VODREP_EXCLUDES(mutex_);

  std::atomic<bool> enabled_{false};
  /// Bumped by clear() so cached thread-local tree pointers self-invalidate.
  std::atomic<std::uint64_t> epoch_{1};
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<ThreadTree>> trees_ VODREP_GUARDED_BY(mutex_);
};

/// RAII phase scope; arms itself only when the profiler is enabled at
/// construction (mirrors ScopedTimer).
class ProfilePhase {
 public:
  explicit ProfilePhase(const char* name) noexcept {
    if (RunProfiler::global().enabled()) {
      armed_ = true;
      RunProfiler::global().enter(name);
    }
  }
  ProfilePhase(const ProfilePhase&) = delete;
  ProfilePhase& operator=(const ProfilePhase&) = delete;
  ~ProfilePhase() {
    if (armed_) RunProfiler::global().leave();
  }

 private:
  bool armed_ = false;
};

}  // namespace vodrep::obs

#ifndef VODREP_OBS_CONCAT_
#define VODREP_OBS_CONCAT_IMPL_(a, b) a##b
#define VODREP_OBS_CONCAT_(a, b) VODREP_OBS_CONCAT_IMPL_(a, b)
#endif

/// Declares a ProfilePhase covering the rest of the enclosing block.
#define VODREP_PROFILE_PHASE(name) \
  ::vodrep::obs::ProfilePhase VODREP_OBS_CONCAT_(vodrep_profile_phase_, \
                                                 __LINE__)(name)
