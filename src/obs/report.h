// The self-describing run-report schema (DESIGN.md §7b).
//
// A run report is one JSON document capturing everything needed to explain
// a simulation run after the fact: the configuration that produced it, the
// end-of-run metrics, the L(t) / l_j(t) / rejection time series, the
// per-reason rejection breakdown, controller replan annotations, and the
// bounded per-request event log.  The schema is versioned
// (`schema_version`) so downstream tooling (vodrep_report, CI validators)
// can evolve without guessing.
//
// This header owns only the schema constants and the validator — both are
// pure json_lite consumers, so they live in src/obs below the simulation
// layer.  Assembling a report from live SimResult/collector state is the
// job of src/sim/run_report.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/json_lite.h"

namespace vodrep::obs {

inline constexpr std::int64_t kRunReportSchemaVersion = 1;
inline constexpr const char* kRunReportKind = "vodrep_run_report";
/// Version of the optional `profile` section (the RunProfiler JSON export);
/// kept in lockstep with RunProfiler::kProfileVersion (static_assert in
/// report.cc).
inline constexpr std::int64_t kRunProfileVersion = 1;

/// Top-level keys every run report must carry.
[[nodiscard]] const std::vector<std::string>& run_report_required_keys();

/// Structural validation: every required top-level key present with the
/// right JSON shape, schema_version/kind correct, the timeline's columnar
/// arrays equally sized, and the per-reason rejection counts summing to the
/// rejection total.  Returns a human-readable problem per violation; empty
/// means the report is valid.
[[nodiscard]] std::vector<std::string> validate_run_report(
    const JsonValue& report);

}  // namespace vodrep::obs
