#include "src/obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "src/obs/json_lite.h"
#include "src/obs/trace.h"
#include "src/util/error.h"

namespace vodrep::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace detail {

std::uint32_t thread_slot() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  require(!bounds_.empty(), "Histogram: need at least one bucket boundary");
  require(std::is_sorted(bounds_.begin(), bounds_.end()) &&
              std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                  bounds_.end(),
          "Histogram: bounds must be strictly increasing");
  buckets_ = std::vector<detail::CounterShard>((bounds_.size() + 1) *
                                               detail::kShards);
  for (std::atomic<double>& shard : sum_shards_) shard.store(0.0);
}

void Histogram::observe(double value) noexcept {
  // Upper-exclusive: first bound strictly greater than the value owns it.
  const auto bucket = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  const std::size_t shard = detail::thread_slot() % detail::kShards;
  buckets_[bucket * detail::kShards + shard].value.fetch_add(
      1, std::memory_order_relaxed);
  count_shards_[shard].value.fetch_add(1, std::memory_order_relaxed);
  std::atomic<double>& sum = sum_shards_[shard];
  double current = sum.load(std::memory_order_relaxed);
  while (!sum.compare_exchange_weak(current, current + value,
                                    std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
  for (std::size_t b = 0; b < counts.size(); ++b) {
    for (std::size_t s = 0; s < detail::kShards; ++s) {
      counts[b] += buckets_[b * detail::kShards + s].value.load(
          std::memory_order_relaxed);
    }
  }
  return counts;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const detail::CounterShard& shard : count_shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const std::atomic<double>& shard : sum_shards_) {
    total += shard.load(std::memory_order_relaxed);
  }
  return total;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry& metrics() { return MetricsRegistry::global(); }

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  require(!gauges_.contains(name) && !histograms_.contains(name), [&] {
    return "MetricsRegistry: '" + name + "' already registered as another kind";
  });
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  require(!counters_.contains(name) && !histograms_.contains(name), [&] {
    return "MetricsRegistry: '" + name + "' already registered as another kind";
  });
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  MutexLock lock(mutex_);
  require(!counters_.contains(name) && !gauges_.contains(name), [&] {
    return "MetricsRegistry: '" + name + "' already registered as another kind";
  });
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else {
    require(slot->bounds() == bounds, [&] {
      return "MetricsRegistry: histogram '" + name +
             "' re-registered with different bounds";
    });
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = histogram->bounds();
    data.bucket_counts = histogram->bucket_counts();
    data.count = histogram->count();
    data.sum = histogram->sum();
    snap.histograms[name] = std::move(data);
  }
  // The global snapshot also surfaces the trace recorder's health counters
  // (how much of the trace survived its bounded buffer), so one metrics
  // export answers "did observability itself drop anything".  Private
  // registries (tests) stay self-contained, and a disabled registry stays
  // empty — the same contract as every folded instrument.
  if (metrics_enabled() && this == &MetricsRegistry::global()) {
    const TraceRecorder& recorder = TraceRecorder::global();
    snap.counters["trace.events_recorded"] = recorder.events_recorded();
    snap.counters["trace.events_dropped"] = recorder.events_dropped();
    snap.counters["trace.buffer_grows"] = recorder.buffer_grows();
  }
  return snap;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const MetricsSnapshot snap = snapshot();
  JsonValue counters = JsonValue::object();
  for (const auto& [name, value] : snap.counters) {
    counters.set(name, JsonValue::integer_u64(value));
  }
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, value] : snap.gauges) {
    gauges.set(name, JsonValue::number(value));
  }
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, data] : snap.histograms) {
    JsonValue bounds = JsonValue::array();
    for (double bound : data.bounds) bounds.push_back(JsonValue::number(bound));
    JsonValue counts = JsonValue::array();
    for (std::uint64_t c : data.bucket_counts) {
      counts.push_back(JsonValue::integer_u64(c));
    }
    JsonValue entry = JsonValue::object();
    entry.set("bounds", std::move(bounds));
    entry.set("counts", std::move(counts));
    entry.set("count", JsonValue::integer_u64(data.count));
    entry.set("sum", JsonValue::number(data.sum));
    histograms.set(name, std::move(entry));
  }
  JsonValue root = JsonValue::object();
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("histograms", std::move(histograms));
  root.write(os);
  os << "\n";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void MetricsRegistry::clear() {
  MutexLock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace vodrep::obs
