#include "src/obs/event_log.h"

#include "src/util/error.h"

namespace vodrep::obs {

std::string_view reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kNoBandwidth:
      return "no_bandwidth";
    case RejectReason::kNoReplicaAlive:
      return "no_replica_alive";
    case RejectReason::kStripeUnavailable:
      return "stripe_unavailable";
    case RejectReason::kCacheMissOriginBusy:
      return "cache_miss_origin_busy";
  }
  return "unknown";
}

std::string_view request_outcome_name(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kServed:
      return "served";
    case RequestOutcome::kRedirected:
      return "redirected";
    case RequestOutcome::kProxied:
      return "proxied";
    case RequestOutcome::kBatched:
      return "batched";
    case RequestOutcome::kRejected:
      return "rejected";
  }
  return "unknown";
}

EventLog::EventLog(std::size_t capacity) : capacity_(capacity) {
  require(capacity >= 1, "EventLog: capacity must be at least 1");
  records_.reserve(capacity);
}

JsonValue EventLog::to_json() const {
  JsonValue root = JsonValue::object();
  root.set("capacity", JsonValue::integer_u64(capacity_));
  root.set("seen", JsonValue::integer_u64(seen_));
  root.set("dropped", JsonValue::integer_u64(dropped_));
  JsonValue records = JsonValue::array();
  for (const RequestRecord& record : records_) {
    JsonValue entry = JsonValue::object();
    entry.set("t", JsonValue::number(record.arrival_time));
    entry.set("video", JsonValue::integer_u64(record.video));
    entry.set("server", JsonValue::integer(record.server));
    entry.set("outcome",
              JsonValue::string(std::string(request_outcome_name(record.outcome))));
    entry.set("reason",
              JsonValue::string(std::string(reject_reason_name(record.reason))));
    records.push_back(std::move(entry));
  }
  root.set("records", std::move(records));
  return root;
}

void EventLog::clear() {
  offset_ = 0.0;
  seen_ = 0;
  dropped_ = 0;
  records_.clear();
}

}  // namespace vodrep::obs
