// Fixed-interval time-series collector for simulation load signals.
//
// The simulation engine samples the load-imbalance degree L (Eq. 2), the
// per-server utilizations l_j, and the running request/rejection counts at
// fixed simulated-time intervals.  The buffer is bounded: when a run
// outlives it, the collector compacts in place — it keeps every second
// sample and doubles the sampling interval — so an arbitrarily long run
// always yields at most `max_samples` samples on a uniform grid.  The
// compaction is a pure function of the record sequence, so the same run
// produces a bit-identical series every time (asserted by
// tests/timeseries_test.cc).
//
// Zero hot-path allocation: every sample slot (including its per-server
// utilization vector) is allocated at construction; record() copies into a
// pre-sized slot and compaction swaps slots in place.
//
// The time axis is global: `set_time_offset` lets multi-epoch drivers (the
// online-adaptation paths) concatenate per-epoch engine clocks into one
// continuous timeline.  record() takes engine-local times and stores
// offset + time; annotate() takes *global* times, because annotations come
// from the orchestrator (controller replans at epoch boundaries), not from
// inside an engine run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/json_lite.h"

namespace vodrep::obs {

struct TimeseriesConfig {
  double interval_sec = 0.0;        ///< initial sampling interval, > 0
  std::size_t max_samples = 512;    ///< even, >= 2; compaction bound
  std::size_t max_annotations = 256;

  void validate() const;
};

/// One snapshot of the piecewise-constant load state.
struct TimeSample {
  double time = 0.0;              ///< global simulated time (offset applied)
  double imbalance_eq2 = 0.0;     ///< instantaneous L (Eq. 2)
  double mean_utilization = 0.0;
  double max_utilization = 0.0;
  std::uint64_t requests = 0;     ///< requests dispatched so far
  std::uint64_t rejected = 0;     ///< rejections so far
  std::uint64_t cache_hits = 0;   ///< cumulative edge-cache hits (0 = no cache)
  std::uint64_t cache_misses = 0; ///< cumulative edge-cache misses
  std::vector<double> utilization;  ///< per-server l_j / B_j

  friend bool operator==(const TimeSample&, const TimeSample&) = default;
};

struct TimelineAnnotation {
  double time = 0.0;  ///< global simulated time
  std::string label;

  friend bool operator==(const TimelineAnnotation&,
                         const TimelineAnnotation&) = default;
};

class TimeseriesCollector {
 public:
  TimeseriesCollector(const TimeseriesConfig& config, std::size_t num_servers);
  TimeseriesCollector(const TimeseriesCollector&) = delete;
  TimeseriesCollector& operator=(const TimeseriesCollector&) = delete;

  /// Engine-local time of the next due sample.  The engine records exactly
  /// when its clock passes this (never between events — the signals are
  /// piecewise constant, so the sample at the boundary is exact).
  [[nodiscard]] double next_due() const noexcept {
    return next_due_global_ - offset_;
  }

  /// Stores one sample at engine-local time next_due() and advances the
  /// schedule; compacts (drop every second sample, double the interval)
  /// when the buffer is full.  `utilization` must have num_servers entries.
  /// The trailing cache counters are cumulative (like requests/rejected) and
  /// default to zero so cache-less recorders need not mention them.
  void record(double eq2, double mean_util, double max_util,
              std::uint64_t requests, std::uint64_t rejected,
              const std::vector<double>& utilization,
              std::uint64_t cache_hits = 0, std::uint64_t cache_misses = 0);

  /// Appends an annotation at *global* time (bounded; dropped-and-counted
  /// beyond max_annotations).
  void annotate(double global_time, std::string label);

  /// Sharded-merge support (src/sim/sharded_engine.h): fills this *fresh*
  /// collector (size 0, factor 1, zero offset, same config as the shards)
  /// with the elementwise merge of per-shard collectors recorded on
  /// identical grids.  Because every shard records the same number of
  /// samples on the same schedule and compaction is a pure function of the
  /// record sequence, the shards' retained grids coincide — and match what
  /// a monolithic run would have retained.  Per sample: counters and the
  /// per-server utilizations sum (foreign servers contribute exact zeros),
  /// max is the max of maxes, mean is the sum of means, and the imbalance
  /// is recomputed from the merged mean/max with integrate_to's clamps.
  void merge_shards(const std::vector<const TimeseriesCollector*>& shards);

  /// Shifts subsequent record() calls by `offset` (epoch concatenation).
  void set_time_offset(double offset) noexcept { offset_ = offset; }
  [[nodiscard]] double time_offset() const noexcept { return offset_; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const TimeSample& sample(std::size_t i) const {
    return samples_[i];
  }
  /// Copy of the recorded samples (tests, CellStats capture).
  [[nodiscard]] std::vector<TimeSample> samples() const;
  [[nodiscard]] const std::vector<TimelineAnnotation>& annotations() const {
    return annotations_;
  }

  /// Current interval after any compactions (initial interval × factor).
  [[nodiscard]] double interval_sec() const noexcept { return interval_sec_; }
  [[nodiscard]] std::uint64_t downsample_factor() const noexcept {
    return downsample_factor_;
  }
  [[nodiscard]] std::uint64_t annotations_dropped() const noexcept {
    return annotations_dropped_;
  }
  [[nodiscard]] std::size_t num_servers() const noexcept {
    return num_servers_;
  }
  /// Compaction bound (TimeseriesConfig::max_samples); lets a sharded
  /// driver clone per-shard collectors on the same grid.
  [[nodiscard]] std::size_t max_samples() const noexcept {
    return max_samples_;
  }

  /// Columnar export: {"interval_sec":..,"downsample_factor":..,
  /// "num_samples":..,"time":[..],"imbalance_eq2":[..],
  /// "mean_utilization":[..],"max_utilization":[..],"requests":[..],
  /// "rejected":[..],"cache_hits":[..],"cache_misses":[..],
  /// "utilization_per_server":[[server 0 series],...]}.
  [[nodiscard]] JsonValue to_json() const;
  /// [{"t":..,"label":".."},...] plus nothing else; pair with to_json().
  [[nodiscard]] JsonValue annotations_json() const;

 private:
  void compact();

  std::size_t num_servers_ = 0;
  double interval_sec_ = 0.0;
  std::size_t max_samples_ = 0;
  std::size_t max_annotations_ = 0;
  double offset_ = 0.0;
  double next_due_global_ = 0.0;
  std::uint64_t downsample_factor_ = 1;
  std::uint64_t annotations_dropped_ = 0;
  std::size_t size_ = 0;
  std::vector<TimeSample> samples_;  ///< pre-sized slots; size_ are live
  std::vector<TimelineAnnotation> annotations_;
};

}  // namespace vodrep::obs
