// Scoped-timer trace recorder emitting chrome://tracing-compatible JSON.
//
// Every recorded span is a "complete" event ({"ph":"X"}) with microsecond
// timestamps; the export loads directly in chrome://tracing or Perfetto
// (ui.perfetto.dev).  Two independent switches keep instrumented hot paths
// free when observability is off:
//
//   * compile time — VODREP_TRACE (CMake option, default ON) controls
//     whether VODREP_TRACE_SCOPE expands to a ScopedTimer at all; with the
//     option off the macro is a no-op statement and the instrumented code
//     carries zero trace overhead by construction;
//   * run time — TraceRecorder::set_enabled.  A disarmed ScopedTimer costs
//     one relaxed atomic load and touches neither the clock nor the event
//     buffer, so the recorder performs zero allocations on the hot path
//     while disabled (asserted by tests/trace_event_test.cc via the
//     events_recorded/buffer_grows instrument counters).
//
// The event buffer is bounded: set_enabled reserves `capacity` slots up
// front and record() drops (and counts) events beyond it, so tracing a long
// run degrades gracefully instead of exhausting memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/thread_annotations.h"

namespace vodrep::obs {

/// One complete event; `name` must point at a string with static storage
/// duration (instrumentation sites pass literals), so recording never
/// copies or allocates per event.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;   ///< span start, steady-clock ns since process start
  std::uint64_t dur_ns = 0;  ///< span duration
  std::uint32_t tid = 0;     ///< per-thread slot (obs::detail::thread_slot)
};

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  static TraceRecorder& global();

  /// Enables recording; reserves space for `capacity` events so the record
  /// hot path never reallocates.  Disabling stops recording but keeps the
  /// buffered events for export.
  void set_enabled(bool enabled, std::size_t capacity = kDefaultCapacity)
      VODREP_EXCLUDES(mutex_);
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Monotonic nanoseconds since process start (steady clock).
  [[nodiscard]] static std::uint64_t now_ns() noexcept;

  /// Appends one complete event (no-op while disabled).  Thread-safe.
  void record_complete(const char* name, std::uint64_t ts_ns,
                       std::uint64_t dur_ns) noexcept VODREP_EXCLUDES(mutex_);

  /// Copy of the buffered events (for assertions; export uses write_json).
  [[nodiscard]] std::vector<TraceEvent> events() const VODREP_EXCLUDES(mutex_);

  // Instrument counters, for tests and for the export metadata.
  [[nodiscard]] std::uint64_t events_recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t events_dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Times the event buffer's capacity grew during record() — stays 0 both
  /// while disabled and while recording within the reserved capacity.
  [[nodiscard]] std::uint64_t buffer_grows() const noexcept {
    return buffer_grows_.load(std::memory_order_relaxed);
  }

  /// Chrome trace-event JSON ({"traceEvents":[...]}, ts/dur in fractional
  /// microseconds).  Loads in chrome://tracing and Perfetto.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

  /// Discards buffered events and resets the instrument counters.
  void clear() VODREP_EXCLUDES(mutex_);

  static constexpr std::size_t kDefaultCapacity = 1 << 20;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> buffer_grows_{0};
  mutable Mutex mutex_;
  std::vector<TraceEvent> events_ VODREP_GUARDED_BY(mutex_);
  std::size_t capacity_ VODREP_GUARDED_BY(mutex_) = 0;
};

/// RAII span: arms itself only when the recorder is enabled at construction,
/// then records one complete event at destruction.  Cheap enough to leave in
/// per-temperature-step and per-run scopes; per-event/per-move scopes should
/// stay coarser than the work they measure.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) noexcept {
    if (TraceRecorder::global().enabled()) {
      name_ = name;
      start_ns_ = TraceRecorder::now_ns();
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (name_ != nullptr) {
      const std::uint64_t end_ns = TraceRecorder::now_ns();
      TraceRecorder::global().record_complete(name_, start_ns_,
                                              end_ns - start_ns_);
    }
  }

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace vodrep::obs

// VODREP_TRACE_SCOPE("name"): declares a ScopedTimer covering the rest of
// the enclosing block.  Compiled out entirely when VODREP_TRACE is not
// defined (CMake -DVODREP_TRACE=OFF).
#define VODREP_OBS_CONCAT_IMPL_(a, b) a##b
#define VODREP_OBS_CONCAT_(a, b) VODREP_OBS_CONCAT_IMPL_(a, b)

#if defined(VODREP_TRACE)
#define VODREP_TRACE_SCOPE(name) \
  ::vodrep::obs::ScopedTimer VODREP_OBS_CONCAT_(vodrep_trace_scope_, \
                                                __LINE__)(name)
#else
#define VODREP_TRACE_SCOPE(name) static_cast<void>(0)
#endif
