// Scoped-timer trace recorder emitting chrome://tracing-compatible JSON.
//
// Every recorded span is a "complete" event ({"ph":"X"}) with microsecond
// timestamps; the export loads directly in chrome://tracing or Perfetto
// (ui.perfetto.dev).  Two independent switches keep instrumented hot paths
// free when observability is off:
//
//   * compile time — VODREP_TRACE (CMake option, default ON) controls
//     whether VODREP_TRACE_SCOPE expands to a ScopedTimer at all; with the
//     option off the macro is a no-op statement and the instrumented code
//     carries zero trace overhead by construction;
//   * run time — TraceRecorder::set_enabled.  A disarmed ScopedTimer costs
//     one relaxed atomic load and touches neither the clock nor the event
//     buffer, so the recorder performs zero allocations on the hot path
//     while disabled (asserted by tests/trace_event_test.cc via the
//     events_recorded/buffer_grows instrument counters).
//
// Storage is one pre-reserved buffer (lane) per recording thread, indexed by
// obs::detail::thread_slot().  Each lane has exactly one writer, which
// publishes events with a release store of the lane's count; readers take an
// acquire load and only touch the published prefix.  Recording therefore
// never contends on a lock — the recorder is usable *on* the sharded
// simulation hot path without serializing the shards.  A lane is reserved to
// the configured capacity once, on the owning thread's first record after
// set_enabled (the enabling thread's lane is reserved eagerly inside
// set_enabled); past that the record path never allocates, and events beyond
// a lane's capacity are dropped and counted.
//
// events() / write_json() merge the lanes into one deterministic order:
// sorted by start timestamp, thread slot breaking ties (and within one lane
// the recorded order is preserved for identical timestamps).  The same set
// of recorded spans therefore always exports byte-identically, regardless of
// which thread finished recording first.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/thread_annotations.h"

namespace vodrep::obs {

/// One complete event; `name` must point at a string with static storage
/// duration (instrumentation sites pass literals), so recording never
/// copies or allocates per event.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;   ///< span start, steady-clock ns since process start
  std::uint64_t dur_ns = 0;  ///< span duration
  std::uint32_t tid = 0;     ///< per-thread slot (obs::detail::thread_slot)
};

class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  static TraceRecorder& global();

  /// Enables recording with `capacity` event slots *per thread lane*.  The
  /// calling thread's lane is reserved before this returns; other threads
  /// reserve theirs once, on their first record.  Disabling stops recording
  /// but keeps the buffered events for export.  Lanes already reserved keep
  /// their original capacity until clear().
  void set_enabled(bool enabled, std::size_t capacity = kDefaultCapacity)
      VODREP_EXCLUDES(mutex_);
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Monotonic nanoseconds since process start (obs::steady_now_ns).
  [[nodiscard]] static std::uint64_t now_ns() noexcept;

  /// Appends one complete event to the calling thread's lane (no-op while
  /// disabled).  Lock-free after the lane's one-time reservation.
  void record_complete(const char* name, std::uint64_t ts_ns,
                       std::uint64_t dur_ns) noexcept VODREP_EXCLUDES(mutex_);

  /// Merged copy of the buffered events, sorted by (ts_ns, tid) — see the
  /// determinism note above.  Safe to call while other threads record; it
  /// sees each lane's published prefix.
  [[nodiscard]] std::vector<TraceEvent> events() const VODREP_EXCLUDES(mutex_);

  // Instrument counters, for tests and for the export metadata.
  [[nodiscard]] std::uint64_t events_recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t events_dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Times an event buffer's capacity grew during record() — stays 0 by
  /// construction in the per-lane design (a lane is reserved once and never
  /// resized on the record path); kept as an observable contract.
  [[nodiscard]] std::uint64_t buffer_grows() const noexcept {
    return buffer_grows_.load(std::memory_order_relaxed);
  }

  /// Chrome trace-event JSON ({"traceEvents":[...]}, ts/dur in fractional
  /// microseconds) over the merged, deterministically ordered events.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

  /// Discards buffered events, releases the lane reservations, and resets
  /// the instrument counters.  Requires recording threads to be quiescent
  /// (disable first; join or drain worker pools).
  void clear() VODREP_EXCLUDES(mutex_);

  /// Per-lane default capacity (events, 24 B each).  Total trace memory is
  /// capacity x lanes actually touched, so a single-threaded run costs one
  /// lane.
  static constexpr std::size_t kDefaultCapacity = 1 << 18;
  /// Threads with slot >= kMaxLanes drop-and-count rather than share a lane
  /// (a shared lane would have two writers and lose the lock-free publish).
  static constexpr std::size_t kMaxLanes = 64;

 private:
  /// Single-writer event buffer for one thread slot.  `count` is the
  /// publication point: the writer fills slots[count] then release-stores
  /// count+1; readers acquire-load count and read only [0, count).
  struct alignas(64) Lane {
    std::atomic<std::size_t> count{0};
    std::atomic<bool> ready{false};  ///< storage reserved, safe to write
    std::vector<TraceEvent> slots;   ///< fixed size while ready
  };

  /// One-time reservation of `lane` (mutex-serialized against readers and
  /// other reservations).  Returns false when recording is disabled again
  /// by the time the lock is held.
  bool prepare_lane(Lane& lane) noexcept VODREP_EXCLUDES(mutex_);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> buffer_grows_{0};
  mutable Mutex mutex_;  ///< guards lane reservation / clear, not recording
  std::size_t capacity_ VODREP_GUARDED_BY(mutex_) = 0;
  const std::unique_ptr<Lane[]> lanes_;  ///< kMaxLanes entries, fixed address
};

/// RAII span: arms itself only when the recorder is enabled at construction,
/// then records one complete event at destruction.  Cheap enough to leave in
/// per-temperature-step and per-run scopes; per-event/per-move scopes should
/// stay coarser than the work they measure.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) noexcept {
    if (TraceRecorder::global().enabled()) {
      name_ = name;
      start_ns_ = TraceRecorder::now_ns();
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (name_ != nullptr) {
      const std::uint64_t end_ns = TraceRecorder::now_ns();
      TraceRecorder::global().record_complete(name_, start_ns_,
                                              end_ns - start_ns_);
    }
  }

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace vodrep::obs

// VODREP_TRACE_SCOPE("name"): declares a ScopedTimer covering the rest of
// the enclosing block.  Compiled out entirely when VODREP_TRACE is not
// defined (CMake -DVODREP_TRACE=OFF).
#ifndef VODREP_OBS_CONCAT_
#define VODREP_OBS_CONCAT_IMPL_(a, b) a##b
#define VODREP_OBS_CONCAT_(a, b) VODREP_OBS_CONCAT_IMPL_(a, b)
#endif

#if defined(VODREP_TRACE)
#define VODREP_TRACE_SCOPE(name) \
  ::vodrep::obs::ScopedTimer VODREP_OBS_CONCAT_(vodrep_trace_scope_, \
                                                __LINE__)(name)
#else
#define VODREP_TRACE_SCOPE(name) static_cast<void>(0)
#endif
