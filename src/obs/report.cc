#include "src/obs/report.h"

#include <cstddef>

#include "src/obs/profile.h"

namespace vodrep::obs {

static_assert(kRunProfileVersion == RunProfiler::kProfileVersion,
              "report schema and RunProfiler must agree on the profile "
              "section version");

namespace {

/// True when `value` is a JSON integer >= 0.  The validator reports shape
/// problems instead of throwing, so every numeric field goes through this
/// (or is_int) before as_int()/as_uint() — a report whose counts are
/// strings, floats, or negative must come back as problems, not as an
/// InvalidArgumentError escaping validate_run_report (the
/// fuzz_report_schema target pins this no-throw contract).
[[nodiscard]] bool is_uint(const JsonValue& value) {
  return value.kind() == JsonValue::Kind::kInt && value.as_int() >= 0;
}

[[nodiscard]] bool is_int(const JsonValue& value) {
  return value.kind() == JsonValue::Kind::kInt;
}

/// Structural check of one merged phase node (src/obs/profile.h to_json
/// output): name string, wall_ns/cpu_ns/count non-negative integers,
/// recursive children.  Depth-capped so a hostile document cannot recurse
/// the validator off the stack (the no-throw fuzz contract covers this
/// section too).
void check_phase_node(const JsonValue& node, int depth,
                      std::vector<std::string>* out) {
  constexpr int kMaxDepth = 64;
  if (depth > kMaxDepth) {
    out->push_back("profile.phases nests deeper than " +
                   std::to_string(kMaxDepth));
    return;
  }
  if (!node.is_object()) {
    out->push_back("profile phase node is not an object");
    return;
  }
  if (!node.has("name") || !node.at("name").is_string()) {
    out->push_back("profile phase node is missing string 'name'");
  }
  for (const char* key : {"wall_ns", "cpu_ns", "count"}) {
    if (!node.has(key) || node.at(key).kind() != JsonValue::Kind::kInt ||
        node.at(key).as_int() < 0) {
      out->push_back(std::string("profile phase node key '") + key +
                     "' is not a non-negative integer");
    }
  }
  if (!node.has("children") || !node.at("children").is_array()) {
    out->push_back("profile phase node is missing array 'children'");
    return;
  }
  for (const JsonValue& child : node.at("children").items()) {
    check_phase_node(child, depth + 1, out);
  }
}

void check_array_sizes(const JsonValue& timeline, const char* key,
                       std::size_t expected, std::vector<std::string>* out) {
  if (!timeline.has(key)) {
    out->push_back(std::string("timeline is missing key '") + key + "'");
    return;
  }
  const JsonValue& value = timeline.at(key);
  if (!value.is_array()) {
    out->push_back(std::string("timeline.") + key + " is not an array");
    return;
  }
  if (value.size() != expected) {
    out->push_back(std::string("timeline.") + key + " has " +
                   std::to_string(value.size()) + " entries, expected " +
                   std::to_string(expected));
  }
}

}  // namespace

const std::vector<std::string>& run_report_required_keys() {
  static const std::vector<std::string> keys = {
      "schema_version", "kind",        "generated_by", "config",
      "final",          "rejections",  "timeline",     "annotations",
      "events",
  };
  return keys;
}

std::vector<std::string> validate_run_report(const JsonValue& report) {
  std::vector<std::string> problems;
  if (!report.is_object()) {
    problems.push_back("report is not a JSON object");
    return problems;
  }
  for (const std::string& key : run_report_required_keys()) {
    if (!report.has(key)) {
      problems.push_back("missing required key '" + key + "'");
    }
  }
  if (!problems.empty()) return problems;

  if (!is_int(report.at("schema_version")) ||
      report.at("schema_version").as_int() != kRunReportSchemaVersion) {
    problems.push_back("schema_version is not " +
                       std::to_string(kRunReportSchemaVersion));
  }
  if (!report.at("kind").is_string() ||
      report.at("kind").as_string() != kRunReportKind) {
    problems.push_back(std::string("kind is not '") + kRunReportKind + "'");
  }
  if (!report.at("config").is_object()) {
    problems.push_back("config is not an object");
  }
  if (!report.at("annotations").is_array()) {
    problems.push_back("annotations is not an array");
  }

  const JsonValue& final_section = report.at("final");
  if (!final_section.is_object()) {
    problems.push_back("final is not an object");
  } else {
    for (const char* key :
         {"total_requests", "rejected", "rejection_rate", "mean_imbalance_eq2",
          "mean_imbalance_cv", "mean_imbalance_capacity", "peak_imbalance_eq2",
          "mean_utilization", "utilization_per_server"}) {
      if (!final_section.has(key)) {
        problems.push_back(std::string("final is missing key '") + key + "'");
      }
    }
  }

  const JsonValue& rejections = report.at("rejections");
  if (!rejections.is_object() || !rejections.has("total") ||
      !rejections.has("by_reason") || !rejections.at("by_reason").is_object()) {
    problems.push_back("rejections must carry 'total' and object 'by_reason'");
  } else if (!is_uint(rejections.at("total"))) {
    problems.push_back("rejections.total is not a non-negative integer");
  } else {
    std::uint64_t sum = 0;
    bool counts_ok = true;
    for (const auto& [name, count] : rejections.at("by_reason").members()) {
      if (!is_uint(count)) {
        problems.push_back("rejections.by_reason['" + name +
                           "'] is not a non-negative integer");
        counts_ok = false;
        continue;
      }
      sum += count.as_uint();
    }
    if (counts_ok && sum != rejections.at("total").as_uint()) {
      problems.push_back(
          "rejections.by_reason does not sum to rejections.total");
    }
  }

  const JsonValue& timeline = report.at("timeline");
  if (!timeline.is_object() || !timeline.has("num_samples")) {
    problems.push_back("timeline must be an object with 'num_samples'");
  } else if (!is_uint(timeline.at("num_samples"))) {
    problems.push_back("timeline.num_samples is not a non-negative integer");
  } else {
    const auto samples = static_cast<std::size_t>(
        timeline.at("num_samples").as_uint());
    for (const char* key : {"time", "imbalance_eq2", "mean_utilization",
                            "max_utilization", "requests", "rejected"}) {
      check_array_sizes(timeline, key, samples, &problems);
    }
    // Cache columns arrived with the edge-tier work; they are optional so
    // pre-cache reports stay valid, but when present they must line up.
    for (const char* key : {"cache_hits", "cache_misses"}) {
      if (timeline.has(key)) {
        check_array_sizes(timeline, key, samples, &problems);
      }
    }
    if (!timeline.has("utilization_per_server") ||
        !timeline.at("utilization_per_server").is_array()) {
      problems.push_back("timeline.utilization_per_server is not an array");
    } else {
      for (const JsonValue& series :
           timeline.at("utilization_per_server").items()) {
        if (!series.is_array() || series.size() != samples) {
          problems.push_back(
              "timeline.utilization_per_server series length mismatch");
          break;
        }
      }
    }
  }

  const JsonValue& events = report.at("events");
  if (!events.is_object() || !events.has("capacity") || !events.has("seen") ||
      !events.has("dropped") || !events.has("records") ||
      !events.at("records").is_array()) {
    problems.push_back(
        "events must carry 'capacity', 'seen', 'dropped', and array "
        "'records'");
  }

  // The profile section is optional (reports from runs without --profile-out
  // stay valid), but when present it must be the versioned RunProfiler
  // export: profile_version, max_rss_kb, and a well-formed phase forest.
  if (report.has("profile")) {
    const JsonValue& profile = report.at("profile");
    if (!profile.is_object() || !profile.has("profile_version") ||
        !profile.has("max_rss_kb") || !profile.has("phases") ||
        !profile.at("phases").is_array()) {
      problems.push_back(
          "profile must carry 'profile_version', 'max_rss_kb', and array "
          "'phases'");
    } else {
      if (!is_int(profile.at("profile_version")) ||
          profile.at("profile_version").as_int() != kRunProfileVersion) {
        problems.push_back("profile.profile_version is not " +
                           std::to_string(kRunProfileVersion));
      }
      if (!is_uint(profile.at("max_rss_kb"))) {
        problems.push_back("profile.max_rss_kb is not a non-negative integer");
      }
      for (const JsonValue& phase : profile.at("phases").items()) {
        check_phase_node(phase, 0, &problems);
      }
    }
  }
  return problems;
}

}  // namespace vodrep::obs
