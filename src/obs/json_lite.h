// Minimal JSON document model: enough to emit the observability exports
// (metrics snapshots, chrome://tracing event streams) deterministically and
// to parse them back for validation in tests and tools.
//
// Not a general JSON library: numbers are doubles (plus an exact-integer
// fast path so uint64 counters survive a round trip), object key order is
// preserved as written, and parse errors throw InvalidArgumentError with a
// byte offset.  Serialization uses max_digits10 so parse(dump(v)) is
// value-exact for every number we emit.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vodrep::obs {

/// One JSON value; a tagged union over the seven JSON shapes (integers are
/// tracked separately from general numbers so counter exports stay exact).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue integer(std::int64_t i);
  static JsonValue integer_u64(std::uint64_t u);
  static JsonValue number(double d);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kNumber || kind_ == Kind::kInt;
  }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const;
  /// Numeric value; exact for kInt within int64 range.
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<Member>& members() const;

  /// Array append / object insert (no key-uniqueness check; the writers
  /// below never emit duplicates).
  void push_back(JsonValue value);
  void set(std::string key, JsonValue value);

  /// Object lookup; throws InvalidArgumentError when absent or not an object.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const;
  /// Array element count / object member count.
  [[nodiscard]] std::size_t size() const;

  /// Compact single-line serialization (valid JSON).
  void write(std::ostream& os) const;
  [[nodiscard]] std::string dump() const;

  /// Structural equality (kInt 3 == kNumber 3.0 compares equal).
  friend bool operator==(const JsonValue& a, const JsonValue& b);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> object_;
};

/// Writes `text` as a JSON string literal (quotes + escapes) to `os`.
void write_json_string(std::ostream& os, std::string_view text);

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected).  Throws InvalidArgumentError on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace vodrep::obs
