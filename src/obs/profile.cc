#include "src/obs/profile.h"

#include <algorithm>
#include <cstring>

#include "src/obs/clock.h"
#include "src/obs/json_lite.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace vodrep::obs {

/// Phase tree owned (written) by exactly one thread.  Node links are
/// indices, not pointers, because the node vector reallocates as phases are
/// first seen.
struct RunProfiler::ThreadTree {
  struct Node {
    const char* name = nullptr;
    std::uint64_t wall_ns = 0;
    std::uint64_t cpu_ns = 0;
    std::uint64_t count = 0;
    std::vector<std::uint32_t> children;
  };
  struct Frame {
    std::uint32_t node = 0;
    std::uint64_t wall_start_ns = 0;
    std::uint64_t cpu_start_ns = 0;
  };
  /// nodes[0] is a synthetic root whose children are this thread's
  /// top-level phases.
  std::vector<Node> nodes = std::vector<Node>(1);
  std::vector<Frame> stack;
  std::uint32_t current = 0;
  std::uint32_t slot = 0;  ///< obs thread_slot, for stable registration order
};

namespace {

/// Cached registration: which profiler epoch this thread's tree belongs to.
thread_local RunProfiler::ThreadTree* tl_tree = nullptr;
thread_local std::uint64_t tl_epoch = 0;

}  // namespace

RunProfiler& RunProfiler::global() {
  static RunProfiler profiler;
  return profiler;
}

RunProfiler::ThreadTree* RunProfiler::local_tree() {
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (tl_tree != nullptr && tl_epoch == epoch) return tl_tree;
  MutexLock lock(mutex_);
  auto tree = std::make_unique<ThreadTree>();
  tree->slot = detail::thread_slot();
  tl_tree = tree.get();
  tl_epoch = epoch_.load(std::memory_order_relaxed);
  trees_.push_back(std::move(tree));
  return tl_tree;
}

void RunProfiler::enter(const char* name) noexcept {
  ThreadTree* tree = local_tree();
  // Find (or add) the child of the current node carrying this phase name.
  // Linear scan: phase fan-out is small (a handful of named stages), and
  // the name-pointer fast path covers the literal-reuse common case.
  std::uint32_t child = 0;
  for (const std::uint32_t idx : tree->nodes[tree->current].children) {
    const char* existing = tree->nodes[idx].name;
    if (existing == name || std::strcmp(existing, name) == 0) {
      child = idx;
      break;
    }
  }
  if (child == 0) {
    child = static_cast<std::uint32_t>(tree->nodes.size());
    ThreadTree::Node node;
    node.name = name;
    tree->nodes.push_back(node);
    tree->nodes[tree->current].children.push_back(child);
  }
  tree->stack.push_back(
      ThreadTree::Frame{child, steady_now_ns(), thread_cpu_now_ns()});
  tree->current = child;
}

void RunProfiler::leave() noexcept {
  // Tolerate leave() after a clear() raced a still-armed ProfilePhase (the
  // quiesce contract was violated upstream): better to drop the sample
  // than to touch a freed tree.
  if (tl_tree == nullptr ||
      tl_epoch != epoch_.load(std::memory_order_relaxed) ||
      tl_tree->stack.empty()) {
    return;
  }
  ThreadTree* tree = tl_tree;
  const ThreadTree::Frame frame = tree->stack.back();
  tree->stack.pop_back();
  ThreadTree::Node& node = tree->nodes[frame.node];
  node.wall_ns += steady_now_ns() - frame.wall_start_ns;
  node.cpu_ns += thread_cpu_now_ns() - frame.cpu_start_ns;
  node.count += 1;
  tree->current = tree->stack.empty() ? 0 : tree->stack.back().node;
}

namespace {

/// Adds `src` (and its subtree) into the forest `dst`, matching by name.
void merge_node(std::vector<PhaseStats>& dst,
                const RunProfiler::ThreadTree& tree, std::uint32_t index) {
  const auto& node = tree.nodes[index];
  PhaseStats* target = nullptr;
  for (PhaseStats& candidate : dst) {
    if (candidate.name == node.name) {
      target = &candidate;
      break;
    }
  }
  if (target == nullptr) {
    dst.emplace_back();
    target = &dst.back();
    target->name = node.name;
  }
  target->wall_ns += node.wall_ns;
  target->cpu_ns += node.cpu_ns;
  target->count += node.count;
  for (const std::uint32_t child : node.children) {
    merge_node(target->children, tree, child);
  }
}

void sort_forest(std::vector<PhaseStats>& forest) {
  std::sort(forest.begin(), forest.end(),
            [](const PhaseStats& a, const PhaseStats& b) {
              return a.name < b.name;
            });
  for (PhaseStats& phase : forest) sort_forest(phase.children);
}

JsonValue phase_to_json(const PhaseStats& phase) {
  JsonValue node = JsonValue::object();
  node.set("name", JsonValue::string(phase.name));
  node.set("wall_ns", JsonValue::integer_u64(phase.wall_ns));
  node.set("cpu_ns", JsonValue::integer_u64(phase.cpu_ns));
  node.set("count", JsonValue::integer_u64(phase.count));
  JsonValue children = JsonValue::array();
  for (const PhaseStats& child : phase.children) {
    children.push_back(phase_to_json(child));
  }
  node.set("children", std::move(children));
  return node;
}

}  // namespace

ProfileSnapshot RunProfiler::snapshot() const {
  MutexLock lock(mutex_);
  ProfileSnapshot out;
  // Visit trees in thread-slot order, then canonicalize: the result is a
  // pure function of the recorded (path -> totals) multiset, independent of
  // thread registration order.
  std::vector<const ThreadTree*> ordered;
  ordered.reserve(trees_.size());
  for (const auto& tree : trees_) ordered.push_back(tree.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const ThreadTree* a, const ThreadTree* b) {
              return a->slot < b->slot;
            });
  for (const ThreadTree* tree : ordered) {
    for (const std::uint32_t root_child : tree->nodes[0].children) {
      merge_node(out.phases, *tree, root_child);
    }
  }
  sort_forest(out.phases);
  out.max_rss_kb = obs::max_rss_kb();
  return out;
}

JsonValue RunProfiler::to_json() const {
  const ProfileSnapshot snap = snapshot();
  JsonValue root = JsonValue::object();
  root.set("profile_version", JsonValue::integer(kProfileVersion));
  root.set("max_rss_kb", JsonValue::integer_u64(snap.max_rss_kb));
  JsonValue trace = JsonValue::object();
  trace.set("recorded",
            JsonValue::integer_u64(TraceRecorder::global().events_recorded()));
  trace.set("dropped",
            JsonValue::integer_u64(TraceRecorder::global().events_dropped()));
  root.set("trace", std::move(trace));
  JsonValue phases = JsonValue::array();
  for (const PhaseStats& phase : snap.phases) {
    phases.push_back(phase_to_json(phase));
  }
  root.set("phases", std::move(phases));
  return root;
}

void RunProfiler::clear() {
  MutexLock lock(mutex_);
  trees_.clear();
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t RunProfiler::threads_registered() const {
  MutexLock lock(mutex_);
  return trees_.size();
}

}  // namespace vodrep::obs
