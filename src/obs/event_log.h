// Bounded per-request event log: one fixed-size record per simulated
// request, so a run can be explained request by request — which server
// served it, whether it was redirected/proxied/batched, and *why* a
// rejection happened (typed reason), not just that one did.
//
// Design rules (the same as the rest of src/obs):
//   * bounded — the record buffer is reserved up front at `capacity`;
//     records beyond it are dropped and counted (`dropped()`), never
//     allocated, so logging a long run degrades gracefully;
//   * zero hot-path allocation — RequestRecord is a flat POD and record()
//     is a bounds check plus an indexed store;
//   * attribution is exact even under overflow — the engine tallies
//     per-reason rejection counts in SimResult itself (always on, one array
//     increment per rejection), so the breakdown reconciles with
//     SimResult::rejected regardless of how many records the log kept.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "src/obs/json_lite.h"

namespace vodrep::obs {

/// Why a request was rejected.  kNone marks non-rejections; policies must
/// attribute every rejection to one of the concrete reasons.
enum class RejectReason : std::uint8_t {
  kNone = 0,               ///< the request was not rejected
  kNoBandwidth,            ///< scheduled server(s) lacked outgoing bandwidth
  kNoReplicaAlive,         ///< every replica holder of the video has crashed
  kStripeUnavailable,      ///< a stripe-group member has crashed
  kCacheMissOriginBusy,    ///< edge-cache miss and the origin had no bandwidth
};
inline constexpr std::size_t kNumRejectReasons = 5;

[[nodiscard]] std::string_view reject_reason_name(RejectReason reason);

/// What finally happened to a request (one primary outcome per request;
/// rejected > batched > proxied > redirected > served).
enum class RequestOutcome : std::uint8_t {
  kServed = 0,   ///< admitted on the round-robin pick
  kRedirected,   ///< admitted on another replica holder
  kProxied,      ///< admitted via a backbone proxy
  kBatched,      ///< joined an existing stream
  kRejected,
};

[[nodiscard]] std::string_view request_outcome_name(RequestOutcome outcome);

/// One dispatched request.  Flat POD so recording never allocates.
struct RequestRecord {
  double arrival_time = 0.0;
  std::uint32_t video = 0;
  /// Primary serving server (the stripe-group lead for striped/hybrid
  /// organizations); -1 when the request was rejected.
  std::int32_t server = -1;
  RequestOutcome outcome = RequestOutcome::kServed;
  RejectReason reason = RejectReason::kNone;

  friend bool operator==(const RequestRecord&, const RequestRecord&) = default;
};

class EventLog {
 public:
  /// Reserves `capacity` record slots up front; record() never reallocates.
  explicit EventLog(std::size_t capacity);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one record, or drops and counts it when the buffer is full.
  /// `record.arrival_time` is engine-local; the stored record carries
  /// offset + time (see set_time_offset).
  void record(RequestRecord record) noexcept {
    ++seen_;
    if (records_.size() < capacity_) {
      record.arrival_time += offset_;
      records_.push_back(record);
    } else {
      ++dropped_;
    }
  }

  /// Shifts subsequent record() times by `offset` so multi-epoch drivers
  /// concatenate per-epoch engine clocks into one global timeline (same
  /// convention as TimeseriesCollector).
  void set_time_offset(double offset) noexcept { offset_ = offset; }
  [[nodiscard]] double time_offset() const noexcept { return offset_; }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Records actually kept (== seen() - dropped()).
  [[nodiscard]] const std::vector<RequestRecord>& records() const {
    return records_;
  }
  /// Every record offered, kept or not.
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// {"capacity":..,"seen":..,"dropped":..,"records":[{...},...]}.
  [[nodiscard]] JsonValue to_json() const;

  void clear();

 private:
  std::size_t capacity_ = 0;
  double offset_ = 0.0;
  std::uint64_t seen_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<RequestRecord> records_;
};

}  // namespace vodrep::obs
