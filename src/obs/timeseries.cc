#include "src/obs/timeseries.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"
#include "src/util/error.h"

namespace vodrep::obs {

void TimeseriesConfig::validate() const {
  require(interval_sec > 0.0, "TimeseriesConfig: interval_sec must be > 0");
  require(max_samples >= 2 && max_samples % 2 == 0,
          "TimeseriesConfig: max_samples must be even and >= 2");
  require(max_annotations >= 1,
          "TimeseriesConfig: max_annotations must be >= 1");
}

TimeseriesCollector::TimeseriesCollector(const TimeseriesConfig& config,
                                         std::size_t num_servers)
    : num_servers_(num_servers),
      interval_sec_(config.interval_sec),
      max_samples_(config.max_samples),
      max_annotations_(config.max_annotations) {
  config.validate();
  require(num_servers >= 1, "TimeseriesCollector: need at least one server");
  samples_.resize(max_samples_);
  for (TimeSample& sample : samples_) {
    sample.utilization.assign(num_servers_, 0.0);
  }
  annotations_.reserve(max_annotations_);
}

void TimeseriesCollector::record(double eq2, double mean_util, double max_util,
                                 std::uint64_t requests, std::uint64_t rejected,
                                 const std::vector<double>& utilization,
                                 std::uint64_t cache_hits,
                                 std::uint64_t cache_misses) {
  VODREP_DCHECK(utilization.size() == num_servers_,
                "TimeseriesCollector: utilization size mismatch");
  if (size_ == max_samples_) compact();
  TimeSample& slot = samples_[size_++];
  slot.time = next_due_global_;
  slot.imbalance_eq2 = eq2;
  slot.mean_utilization = mean_util;
  slot.max_utilization = max_util;
  slot.requests = requests;
  slot.rejected = rejected;
  slot.cache_hits = cache_hits;
  slot.cache_misses = cache_misses;
  std::copy(utilization.begin(), utilization.end(), slot.utilization.begin());
  next_due_global_ += interval_sec_;
}

void TimeseriesCollector::compact() {
  // Keep samples 0, 2, 4, ... — with the first sample at t = 0 and the grid
  // uniform, the survivors sit exactly on the doubled-interval grid, so
  // repeated compaction preserves a uniform timeline.  Slot swap, no
  // allocation.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < size_; i += 2) {
    if (keep != i) std::swap(samples_[keep], samples_[i]);
    ++keep;
  }
  size_ = keep;
  interval_sec_ *= 2.0;
  downsample_factor_ *= 2;
}

void TimeseriesCollector::merge_shards(
    const std::vector<const TimeseriesCollector*>& shards) {
  require(!shards.empty(), "merge_shards: need at least one shard collector");
  require(size_ == 0 && downsample_factor_ == 1 && offset_ == 0.0,
          "merge_shards: target collector must be fresh");
  const TimeseriesCollector& first = *shards.front();
  require(first.num_servers_ == num_servers_ &&
              first.max_samples_ == max_samples_,
          "merge_shards: target collector configured unlike the shards");
  for (const TimeseriesCollector* shard : shards) {
    require(shard->num_servers_ == num_servers_ &&
                shard->size_ == first.size_ &&
                shard->interval_sec_ == first.interval_sec_ &&
                shard->downsample_factor_ == first.downsample_factor_,
            "merge_shards: shard collectors recorded on different grids");
  }
  // Adopt the (possibly compacted) shard grid, then merge slot by slot.
  interval_sec_ = first.interval_sec_;
  downsample_factor_ = first.downsample_factor_;
  next_due_global_ = first.next_due_global_;
  size_ = first.size_;
  for (std::size_t i = 0; i < size_; ++i) {
    TimeSample& slot = samples_[i];
    slot = first.samples_[i];
    for (std::size_t k = 1; k < shards.size(); ++k) {
      const TimeSample& other = shards[k]->samples_[i];
      require(other.time == slot.time,
              "merge_shards: shard sample times diverge");
      slot.mean_utilization += other.mean_utilization;
      slot.max_utilization =
          std::max(slot.max_utilization, other.max_utilization);
      slot.requests += other.requests;
      slot.rejected += other.rejected;
      slot.cache_hits += other.cache_hits;
      slot.cache_misses += other.cache_misses;
      for (std::size_t s = 0; s < num_servers_; ++s) {
        slot.utilization[s] += other.utilization[s];
      }
    }
    // Recompute the imbalance from the merged mean/max exactly as
    // SimEngine::sample_timeline_to does (idle clusters report 0).
    slot.imbalance_eq2 =
        (slot.max_utilization > 0.0 && slot.mean_utilization > 0.0)
            ? std::max(0.0, (slot.max_utilization - slot.mean_utilization) /
                                slot.mean_utilization)
            : 0.0;
  }
}

void TimeseriesCollector::annotate(double global_time, std::string label) {
  if (annotations_.size() >= max_annotations_) {
    ++annotations_dropped_;
    return;
  }
  annotations_.push_back(TimelineAnnotation{global_time, std::move(label)});
}

std::vector<TimeSample> TimeseriesCollector::samples() const {
  return std::vector<TimeSample>(samples_.begin(),
                                 samples_.begin() +
                                     static_cast<std::ptrdiff_t>(size_));
}

JsonValue TimeseriesCollector::to_json() const {
  JsonValue root = JsonValue::object();
  root.set("interval_sec", JsonValue::number(interval_sec_));
  root.set("downsample_factor", JsonValue::integer_u64(downsample_factor_));
  root.set("num_samples", JsonValue::integer_u64(size_));
  JsonValue time = JsonValue::array();
  JsonValue eq2 = JsonValue::array();
  JsonValue mean_util = JsonValue::array();
  JsonValue max_util = JsonValue::array();
  JsonValue requests = JsonValue::array();
  JsonValue rejected = JsonValue::array();
  JsonValue cache_hits = JsonValue::array();
  JsonValue cache_misses = JsonValue::array();
  for (std::size_t i = 0; i < size_; ++i) {
    const TimeSample& s = samples_[i];
    time.push_back(JsonValue::number(s.time));
    eq2.push_back(JsonValue::number(s.imbalance_eq2));
    mean_util.push_back(JsonValue::number(s.mean_utilization));
    max_util.push_back(JsonValue::number(s.max_utilization));
    requests.push_back(JsonValue::integer_u64(s.requests));
    rejected.push_back(JsonValue::integer_u64(s.rejected));
    cache_hits.push_back(JsonValue::integer_u64(s.cache_hits));
    cache_misses.push_back(JsonValue::integer_u64(s.cache_misses));
  }
  root.set("time", std::move(time));
  root.set("imbalance_eq2", std::move(eq2));
  root.set("mean_utilization", std::move(mean_util));
  root.set("max_utilization", std::move(max_util));
  root.set("requests", std::move(requests));
  root.set("rejected", std::move(rejected));
  root.set("cache_hits", std::move(cache_hits));
  root.set("cache_misses", std::move(cache_misses));
  JsonValue per_server = JsonValue::array();
  for (std::size_t s = 0; s < num_servers_; ++s) {
    JsonValue series = JsonValue::array();
    for (std::size_t i = 0; i < size_; ++i) {
      series.push_back(JsonValue::number(samples_[i].utilization[s]));
    }
    per_server.push_back(std::move(series));
  }
  root.set("utilization_per_server", std::move(per_server));
  return root;
}

JsonValue TimeseriesCollector::annotations_json() const {
  JsonValue array = JsonValue::array();
  for (const TimelineAnnotation& annotation : annotations_) {
    JsonValue entry = JsonValue::object();
    entry.set("t", JsonValue::number(annotation.time));
    entry.set("label", JsonValue::string(annotation.label));
    array.push_back(std::move(entry));
  }
  return array;
}

}  // namespace vodrep::obs
