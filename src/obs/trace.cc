#include "src/obs/trace.h"

#include <algorithm>
#include <sstream>

#include "src/obs/clock.h"
#include "src/obs/json_lite.h"
#include "src/obs/metrics.h"

namespace vodrep::obs {

TraceRecorder::TraceRecorder() : lanes_(new Lane[kMaxLanes]) {}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

std::uint64_t TraceRecorder::now_ns() noexcept { return steady_now_ns(); }

void TraceRecorder::set_enabled(bool enabled, std::size_t capacity) {
  {
    MutexLock lock(mutex_);
    if (enabled) {
      capacity_ = capacity;
      // Reserve the enabling thread's lane now, so single-threaded programs
      // (always slot 0) never allocate on the record path at all.
      const std::uint32_t slot = detail::thread_slot();
      if (slot < kMaxLanes) {
        Lane& lane = lanes_[slot];
        if (!lane.ready.load(std::memory_order_relaxed)) {
          lane.slots.resize(capacity_);
          lane.ready.store(true, std::memory_order_release);
        }
      }
    }
  }
  enabled_.store(enabled, std::memory_order_relaxed);
}

bool TraceRecorder::prepare_lane(Lane& lane) noexcept {
  MutexLock lock(mutex_);
  if (lane.ready.load(std::memory_order_relaxed)) return true;
  if (!enabled()) return false;
  lane.slots.resize(capacity_);
  lane.ready.store(true, std::memory_order_release);
  return true;
}

void TraceRecorder::record_complete(const char* name, std::uint64_t ts_ns,
                                    std::uint64_t dur_ns) noexcept {
  if (!enabled()) return;
  const std::uint32_t tid = detail::thread_slot();
  if (tid >= kMaxLanes) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Lane& lane = lanes_[tid];
  if (!lane.ready.load(std::memory_order_acquire)) {
    // One-time lane reservation on this thread's first record; every later
    // record from this thread takes the lock-free path below.
    if (!prepare_lane(lane)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  const std::size_t idx = lane.count.load(std::memory_order_relaxed);
  if (idx >= lane.slots.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  lane.slots[idx] = TraceEvent{name, ts_ns, dur_ns, tid};
  lane.count.store(idx + 1, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::events() const {
  // The mutex excludes concurrent lane *reservation* (vector resize); the
  // acquire load of each lane's count pairs with the writer's release store,
  // so the published prefix is safe to copy while that writer keeps
  // recording past it.
  MutexLock lock(mutex_);
  std::vector<TraceEvent> merged;
  std::size_t total = 0;
  for (std::size_t slot = 0; slot < kMaxLanes; ++slot) {
    const Lane& lane = lanes_[slot];
    if (!lane.ready.load(std::memory_order_acquire)) continue;
    total += lane.count.load(std::memory_order_acquire);
  }
  merged.reserve(total);
  for (std::size_t slot = 0; slot < kMaxLanes; ++slot) {
    const Lane& lane = lanes_[slot];
    if (!lane.ready.load(std::memory_order_acquire)) continue;
    const std::size_t count = lane.count.load(std::memory_order_acquire);
    merged.insert(merged.end(), lane.slots.begin(),
                  lane.slots.begin() + static_cast<std::ptrdiff_t>(count));
  }
  // Deterministic merge order: start timestamp, thread slot tie-break.  The
  // concatenation above visits lanes in slot order and stable_sort keeps the
  // within-lane recorded order for identical (ts, tid) pairs, so the same
  // recorded spans always export identically.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     return a.tid < b.tid;
                   });
  return merged;
}

void TraceRecorder::write_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = this->events();
  // Streamed rather than built as a JsonValue: trace buffers can hold ~1M
  // events and the flat writer keeps export memory at O(events).
  // chrome://tracing expects microseconds; the sub-microsecond residue is
  // kept as a zero-padded fractional part.
  const auto write_us = [&os](std::uint64_t ns) {
    os << (ns / 1000) << '.';
    const std::uint64_t frac = ns % 1000;
    if (frac < 100) os << '0';
    if (frac < 10) os << '0';
    os << frac;
  };
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    write_json_string(os, event.name);
    os << ",\"cat\":\"vodrep\",\"ph\":\"X\",\"ts\":";
    write_us(event.ts_ns);
    os << ",\"dur\":";
    write_us(event.dur_ns);
    os << ",\"pid\":1,\"tid\":" << event.tid << "}";
  }
  os << "],\"otherData\":{\"recorded\":"
     << recorded_.load(std::memory_order_relaxed)
     << ",\"dropped\":" << dropped_.load(std::memory_order_relaxed) << "}}\n";
}

std::string TraceRecorder::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void TraceRecorder::clear() {
  MutexLock lock(mutex_);
  for (std::size_t slot = 0; slot < kMaxLanes; ++slot) {
    Lane& lane = lanes_[slot];
    lane.ready.store(false, std::memory_order_relaxed);
    lane.count.store(0, std::memory_order_relaxed);
    std::vector<TraceEvent>().swap(lane.slots);
  }
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  buffer_grows_.store(0, std::memory_order_relaxed);
}

}  // namespace vodrep::obs
