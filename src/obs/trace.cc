#include "src/obs/trace.h"

#include <chrono>
#include <sstream>

#include "src/obs/json_lite.h"
#include "src/obs/metrics.h"

namespace vodrep::obs {

namespace {

/// Fixed epoch so timestamps are comparable across threads and recorders.
const std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

}  // namespace

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

std::uint64_t TraceRecorder::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - g_epoch)
          .count());
}

void TraceRecorder::set_enabled(bool enabled, std::size_t capacity) {
  {
    MutexLock lock(mutex_);
    if (enabled) {
      capacity_ = capacity;
      if (events_.capacity() < capacity_) events_.reserve(capacity_);
    }
  }
  enabled_.store(enabled, std::memory_order_relaxed);
}

void TraceRecorder::record_complete(const char* name, std::uint64_t ts_ns,
                                    std::uint64_t dur_ns) noexcept {
  if (!enabled()) return;
  const std::uint32_t tid = detail::thread_slot();
  MutexLock lock(mutex_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (events_.size() == events_.capacity()) {
    // Only reachable when set_enabled could not pre-reserve; counted so the
    // zero-allocation contract stays observable.
    buffer_grows_.fetch_add(1, std::memory_order_relaxed);
  }
  events_.push_back(TraceEvent{name, ts_ns, dur_ns, tid});
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::events() const {
  MutexLock lock(mutex_);
  return events_;
}

void TraceRecorder::write_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = this->events();
  // Streamed rather than built as a JsonValue: trace buffers can hold ~1M
  // events and the flat writer keeps export memory at O(1).
  // chrome://tracing expects microseconds; the sub-microsecond residue is
  // kept as a zero-padded fractional part.
  const auto write_us = [&os](std::uint64_t ns) {
    os << (ns / 1000) << '.';
    const std::uint64_t frac = ns % 1000;
    if (frac < 100) os << '0';
    if (frac < 10) os << '0';
    os << frac;
  };
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    write_json_string(os, event.name);
    os << ",\"cat\":\"vodrep\",\"ph\":\"X\",\"ts\":";
    write_us(event.ts_ns);
    os << ",\"dur\":";
    write_us(event.dur_ns);
    os << ",\"pid\":1,\"tid\":" << event.tid << "}";
  }
  os << "],\"otherData\":{\"recorded\":"
     << recorded_.load(std::memory_order_relaxed)
     << ",\"dropped\":" << dropped_.load(std::memory_order_relaxed) << "}}\n";
}

std::string TraceRecorder::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void TraceRecorder::clear() {
  MutexLock lock(mutex_);
  events_.clear();
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  buffer_grows_.store(0, std::memory_order_relaxed);
}

}  // namespace vodrep::obs
