// Low-overhead metrics registry: named counters, gauges, and fixed-bucket
// histograms.
//
// Design targets (DESIGN.md §7):
//   * registration is thread-safe (registry mutex) and idempotent — asking
//     for an existing name returns the same instrument;
//   * the hot path (Counter::add, Histogram::observe) is lock-free: each
//     instrument keeps a small array of cache-line-padded atomic shards,
//     threads pick a shard by a per-thread slot, increments are relaxed
//     fetch_adds, and value()/snapshot() folds the shards.  Concurrent
//     increments are never lost (the fold of atomic adds is exact);
//   * instrumented library code guards registry work behind the process-wide
//     metrics_enabled() switch (one relaxed atomic load when off), and folds
//     bulk counts at end-of-run epilogues rather than per event, so the cost
//     with metrics compiled in but disabled is ~zero (see the
//     vodrep_sa_hotpath obs guard);
//   * write_json() emits a deterministic machine-readable snapshot.
//
// Instrument references returned by the registry stay valid until clear();
// library epilogues therefore re-look instruments up by name per run instead
// of caching them across runs.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/thread_annotations.h"

namespace vodrep::obs {

/// Process-wide runtime switch consulted by all instrumented hot paths.
/// Off by default; CLIs flip it when --metrics-out is given.
[[nodiscard]] bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

namespace detail {

/// Stable small integer for the calling thread, used to spread instrument
/// updates over shards (and as the tid of trace events).  Assigned in
/// first-use order, so single-threaded programs always map to slot 0.
[[nodiscard]] std::uint32_t thread_slot() noexcept;

constexpr std::size_t kShards = 16;

/// One cache line per shard so concurrent increments do not false-share.
struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace detail

/// Monotonically increasing event count.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Lock-free; concurrent adds from any number of threads fold exactly.
  void add(std::uint64_t n) noexcept {
    shards_[detail::thread_slot() % detail::kShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  /// Folds the shards.  Exact once concurrent writers have quiesced.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const detail::CounterShard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<detail::CounterShard, detail::kShards> shards_;
};

/// Last-written (or accumulated) double value, e.g. a high-water mark.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  /// Atomic add (CAS loop; gauges are not hot-path instruments).
  void add(double delta) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to `value` if larger (high-water marks).
  void set_max(double value) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (current < value &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram.  Bucket boundaries are *upper* bounds,
/// lower-inclusive / upper-exclusive: a value v lands in the first bucket i
/// with v < bounds[i] (so bucket i covers [bounds[i-1], bounds[i]), with an
/// implicit -inf lower edge on bucket 0); v >= bounds.back() lands in the
/// overflow bucket.  A boundary value itself therefore counts in the bucket
/// *above* it: observe(bounds[i]) increments bucket i+1.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Lock-free sharded increment of the owning bucket plus the running
  /// count/sum.
  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts folded over shards; size bounds().size() + 1, the
  /// last entry being the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;

 private:
  std::vector<double> bounds_;
  /// bucket-major: shard s of bucket b at index b * kShards + s.
  std::vector<detail::CounterShard> buckets_;
  std::array<detail::CounterShard, detail::kShards> count_shards_;
  std::array<std::atomic<double>, detail::kShards> sum_shards_;
};

/// Deep-copied, quiescent view of a registry (for programmatic assertions;
/// JSON export reads the live registry directly).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<std::uint64_t> bucket_counts;  ///< size bounds.size() + 1
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::map<std::string, HistogramData> histograms;
};

/// Named-instrument registry.  The process-wide instance backs all library
/// instrumentation; tests may construct private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global();

  /// Returns the instrument registered under `name`, creating it on first
  /// use.  Re-registering returns the identical instrument; registering a
  /// name that already exists as a different kind (or, for histograms, with
  /// different bounds) throws InvalidArgumentError.  The returned reference
  /// is lock-free to use; only the registration map is guarded.
  Counter& counter(const std::string& name) VODREP_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) VODREP_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name, std::vector<double> bounds)
      VODREP_EXCLUDES(mutex_);

  [[nodiscard]] MetricsSnapshot snapshot() const VODREP_EXCLUDES(mutex_);

  /// Deterministic JSON export: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"bounds":[...],"counts":[...],"count":n,"sum":x}}}
  /// with names sorted.
  void write_json(std::ostream& os) const VODREP_EXCLUDES(mutex_);
  [[nodiscard]] std::string to_json() const VODREP_EXCLUDES(mutex_);

  /// Drops every instrument.  Invalidates previously returned references —
  /// only for test isolation and CLI runs that own the whole process.
  void clear() VODREP_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      VODREP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      VODREP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      VODREP_GUARDED_BY(mutex_);
};

/// Shorthand for MetricsRegistry::global().
[[nodiscard]] MetricsRegistry& metrics();

}  // namespace vodrep::obs
