// The obs clock shim: every timing read in src/{sim,anneal,obs} goes
// through these three functions (enforced by the `raw-clock` vodrep_lint
// rule), so instrumented code never touches std::chrono clocks or
// clock_gettime directly.  Centralizing the reads keeps timestamps
// comparable across threads and recorders (one shared epoch), gives the
// profiler a single place to pick the per-thread CPU clock, and leaves one
// seam to virtualize time under if a deterministic-clock test mode is ever
// needed.
#pragma once

#include <cstdint>

namespace vodrep::obs {

/// Monotonic wall-clock nanoseconds since process start (steady clock
/// against a fixed process-wide epoch, so values are comparable across
/// threads, recorders, and the profiler).
[[nodiscard]] std::uint64_t steady_now_ns() noexcept;

/// CPU time consumed by the *calling thread*, in nanoseconds
/// (CLOCK_THREAD_CPUTIME_ID).  Returns 0 on platforms without a per-thread
/// CPU clock; callers must treat deltas of 0 as "not measured", not "free".
[[nodiscard]] std::uint64_t thread_cpu_now_ns() noexcept;

/// Process high-water resident set size in KiB (getrusage ru_maxrss);
/// 0 when unavailable.
[[nodiscard]] std::uint64_t max_rss_kb() noexcept;

}  // namespace vodrep::obs
