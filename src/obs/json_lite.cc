#include "src/obs/json_lite.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "src/util/error.h"

namespace vodrep::obs {

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::integer(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kInt;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::integer_u64(std::uint64_t u) {
  // Counters live in uint64; values beyond int64 range (never reached by
  // real runs) degrade to the double representation.
  if (u <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    return integer(static_cast<std::int64_t>(u));
  }
  return number(static_cast<double>(u));
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  require(kind_ == Kind::kBool, "JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  require(is_number(), "JsonValue: not a number");
  return kind_ == Kind::kInt ? static_cast<double>(int_) : number_;
}

std::int64_t JsonValue::as_int() const {
  require(kind_ == Kind::kInt, "JsonValue: not an integer");
  return int_;
}

std::uint64_t JsonValue::as_uint() const {
  require(kind_ == Kind::kInt && int_ >= 0,
          "JsonValue: not a non-negative integer");
  return static_cast<std::uint64_t>(int_);
}

const std::string& JsonValue::as_string() const {
  require(kind_ == Kind::kString, "JsonValue: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  require(kind_ == Kind::kArray, "JsonValue: not an array");
  return array_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  require(kind_ == Kind::kObject, "JsonValue: not an object");
  return object_;
}

void JsonValue::push_back(JsonValue value) {
  require(kind_ == Kind::kArray, "JsonValue: push_back on a non-array");
  array_.push_back(std::move(value));
}

void JsonValue::set(std::string key, JsonValue value) {
  require(kind_ == Kind::kObject, "JsonValue: set on a non-object");
  object_.emplace_back(std::move(key), std::move(value));
}

const JsonValue& JsonValue::at(std::string_view key) const {
  require(kind_ == Kind::kObject, "JsonValue: at() on a non-object");
  for (const Member& member : object_) {
    if (member.first == key) return member.second;
  }
  detail::throw_invalid("JsonValue: missing key '" + std::string(key) + "'");
}

bool JsonValue::has(std::string_view key) const {
  if (kind_ != Kind::kObject) return false;
  for (const Member& member : object_) {
    if (member.first == key) return true;
  }
  return false;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  detail::throw_invalid("JsonValue: size() on a scalar");
}

void write_json_string(std::ostream& os, std::string_view text) {
  os << '"';
  for (char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buffer;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

namespace {

void write_double(std::ostream& os, double d) {
  require(std::isfinite(d), "JsonValue: NaN/Inf is not representable in JSON");
  // Round-trip exact: shortest representation that parses back to the same
  // double.
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof buffer, d);
  require(ec == std::errc(), "JsonValue: number formatting failed");
  os.write(buffer, end - buffer);
}

}  // namespace

void JsonValue::write(std::ostream& os) const {
  switch (kind_) {
    case Kind::kNull: os << "null"; return;
    case Kind::kBool: os << (bool_ ? "true" : "false"); return;
    case Kind::kInt: os << int_; return;
    case Kind::kNumber: write_double(os, number_); return;
    case Kind::kString: write_json_string(os, string_); return;
    case Kind::kArray: {
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) os << ',';
        array_[i].write(os);
      }
      os << ']';
      return;
    }
    case Kind::kObject: {
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) os << ',';
        write_json_string(os, object_[i].first);
        os << ':';
        object_[i].second.write(os);
      }
      os << '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.is_number() && b.is_number()) return a.as_number() == b.as_number();
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case JsonValue::Kind::kNull: return true;
    case JsonValue::Kind::kBool: return a.bool_ == b.bool_;
    case JsonValue::Kind::kInt:
    case JsonValue::Kind::kNumber: return true;  // handled above
    case JsonValue::Kind::kString: return a.string_ == b.string_;
    case JsonValue::Kind::kArray: return a.array_ == b.array_;
    case JsonValue::Kind::kObject: return a.object_ == b.object_;
  }
  return false;
}

namespace {

/// Recursive-descent JSON parser over a string_view.  Depth-capped so a
/// pathological input cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    require(pos_ == text_.size(),
            [&] { return error("trailing characters after JSON document"); });
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  [[nodiscard]] std::string error(const std::string& what) const {
    return "json parse error at byte " + std::to_string(pos_) + ": " + what;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    require(pos_ < text_.size(),
            [&] { return error("unexpected end of input"); });
    return text_[pos_];
  }

  void expect(char c) {
    require(peek() == c, [&] {
      return error(std::string("expected '") + c + "', found '" + peek() + "'");
    });
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    require(depth < kMaxDepth, [&] { return error("nesting too deep"); });
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::string(parse_string());
      case 't':
        require(consume_literal("true"), [&] { return error("bad literal"); });
        return JsonValue::boolean(true);
      case 'f':
        require(consume_literal("false"), [&] { return error("bad literal"); });
        return JsonValue::boolean(false);
      case 'n':
        require(consume_literal("null"), [&] { return error("bad literal"); });
        return JsonValue::null();
      default: return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonValue object = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.set(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return object;
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    JsonValue array = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      array.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return array;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      require(pos_ < text_.size(),
              [&] { return error("unterminated string"); });
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      require(pos_ < text_.size(), [&] { return error("dangling escape"); });
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default:
          detail::throw_invalid(error("unknown escape sequence"));
      }
    }
  }

  void append_unicode_escape(std::string& out) {
    require(pos_ + 4 <= text_.size(),
            [&] { return error("truncated \\u escape"); });
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        detail::throw_invalid(error("bad \\u escape digit"));
      }
    }
    // Encode the BMP code point as UTF-8 (surrogate pairs are not combined;
    // our own writer never emits them).
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    require(!token.empty() && token != "-",
            [&] { return error("malformed number"); });
    if (integral) {
      std::int64_t value = 0;
      const auto [end, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && end == token.data() + token.size()) {
        return JsonValue::integer(value);
      }
      // Out of int64 range: fall through to the double path.
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    require(ec == std::errc() && end == token.data() + token.size(),
            [&] { return error("malformed number"); });
    return JsonValue::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace vodrep::obs
