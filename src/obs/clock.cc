// Home of the raw clock reads (see the raw-clock rule in tools/vodrep_lint:
// this file and clock.h are the shim's home and the only place under
// src/{sim,anneal,obs} allowed to touch the clocks directly).
#include "src/obs/clock.h"

#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <time.h>
#endif

namespace vodrep::obs {

namespace {

/// Fixed epoch so timestamps are comparable across threads and recorders.
const std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

}  // namespace

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - g_epoch)
          .count());
}

std::uint64_t thread_cpu_now_ns() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

std::uint64_t max_rss_kb() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#endif
#else
  return 0;
#endif
}

}  // namespace vodrep::obs
