#include "src/audit/audit.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {
namespace {

/// Relative slack on physically continuous bounds (storage bytes, bandwidth
/// bps), absorbing float accumulation; matches is_feasible's convention.
constexpr double kContinuousSlack = 1.0 + 1e-9;

/// Drift comparison for cached-vs-fresh cross-checks: relative to the larger
/// magnitude, with an absolute floor of `tolerance` so near-zero quantities
/// are not held to an impossible standard.
bool drift_close(double cached, double fresh, double tolerance) {
  const double scale =
      std::max({1.0, std::abs(cached), std::abs(fresh)});
  return std::abs(cached - fresh) <= tolerance * scale;
}

void add(AuditReport& report, ViolationKind kind, std::size_t video,
         std::size_t server, double actual, double limit) {
  report.violations.push_back(Violation{kind, video, server, actual, limit});
}

/// Eq. 6/7 structural checks for one video's host list.  Out-of-range hosts
/// are reported here and skipped by the usage accumulation.
void check_structure(AuditReport& report, std::size_t video,
                     const std::vector<std::size_t>& servers,
                     std::size_t num_servers) {
  report.checks_performed += 3;
  if (servers.empty()) {
    add(report, ViolationKind::kNoReplica, video, Violation::kNone,
        /*actual=*/0.0, /*limit=*/1.0);
  }
  if (servers.size() > num_servers) {
    add(report, ViolationKind::kTooManyReplicas, video, Violation::kNone,
        static_cast<double>(servers.size()),
        static_cast<double>(num_servers));
  }
  std::vector<std::size_t> sorted = servers;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t k = 1; k < sorted.size(); ++k) {
    if (sorted[k] == sorted[k - 1] && (k < 2 || sorted[k] != sorted[k - 2])) {
      add(report, ViolationKind::kDuplicateServer, video, sorted[k],
          static_cast<double>(std::count(sorted.begin(), sorted.end(),
                                         sorted[k])),
          /*limit=*/1.0);
    }
  }
  for (std::size_t s : servers) {
    if (s >= num_servers) {
      add(report, ViolationKind::kServerOutOfRange, video, s,
          static_cast<double>(s), static_cast<double>(num_servers) - 1.0);
    }
  }
}

/// From-first-principles per-server usage of a scalable solution, plus the
/// running sums the objective needs.  Reads only raw problem/solution fields.
struct FreshUsage {
  std::vector<double> storage_bytes;
  std::vector<double> bandwidth_bps;
  double rate_sum_mbps = 0.0;
  std::size_t replica_sum = 0;
  double degree_sum = 0.0;  ///< sum_i r_i * f_i (== replica_sum at f == 1)
};

FreshUsage recompute_usage(const ScalableProblem& problem,
                           const ScalableSolution& solution) {
  const std::size_t n = problem.cluster.num_servers;
  FreshUsage usage;
  usage.storage_bytes.assign(n, 0.0);
  usage.bandwidth_bps.assign(n, 0.0);
  for (std::size_t i = 0; i < solution.num_videos(); ++i) {
    const std::size_t idx = solution.bitrate_index[i];
    if (idx >= problem.ladder.size()) continue;  // reported separately
    const auto& servers = solution.placement[i];
    if (servers.empty()) continue;
    const double rate = problem.ladder.rates_bps[idx];
    const double bytes =
        units::video_bytes(problem.videos.duration_sec, rate);
    const double per_replica_bps =
        problem.expected_peak_requests * problem.videos.popularity[i] /
        static_cast<double>(servers.size()) * rate;
    // Prefix model: a replica stores/serves only the f_i prefix.  f == 1.0
    // multiplies by exactly 1, keeping whole-file audits bit-identical.
    const double fraction = solution.fraction_of(i);
    for (std::size_t s : servers) {
      if (s >= n) continue;  // reported separately
      usage.storage_bytes[s] += bytes * fraction;
      usage.bandwidth_bps[s] += per_replica_bps * fraction;
    }
    usage.rate_sum_mbps += units::to_mbps(rate);
    usage.replica_sum += servers.size();
    usage.degree_sum += static_cast<double>(servers.size()) * fraction;
  }
  return usage;
}

/// Independent Eq. 2/3 imbalance of a load vector.
double recompute_imbalance(const std::vector<double>& loads,
                           ImbalanceDefinition definition) {
  const auto n = static_cast<double>(loads.size());
  double sum = 0.0;
  for (double l : loads) sum += l;
  const double mean = sum / n;
  if (mean <= 0.0) return 0.0;
  if (definition == ImbalanceDefinition::kMaxRelative) {
    const double max = *std::max_element(loads.begin(), loads.end());
    return std::max(0.0, (max - mean) / mean);
  }
  double sq = 0.0;
  for (double l : loads) sq += (l - mean) * (l - mean);
  return std::sqrt(sq / n) / mean;
}

/// Independent Eq. 1 objective from the fresh usage.
double recompute_objective(const ScalableProblem& problem,
                           const ScalableSolution& solution,
                           const FreshUsage& usage) {
  const auto m = static_cast<double>(solution.num_videos());
  const auto n = static_cast<double>(problem.cluster.num_servers);
  const double mean_rate_mbps = usage.rate_sum_mbps / m;
  // degree_sum sums exact integers while every fraction is 1.0, so the
  // whole-file objective recomputation is unchanged bit for bit.
  const double mean_degree_normalized = usage.degree_sum / m / n;
  const double imbalance = recompute_imbalance(
      usage.bandwidth_bps, problem.weights.imbalance_definition);
  return mean_rate_mbps + problem.weights.alpha * mean_degree_normalized -
         problem.weights.beta * imbalance;
}

}  // namespace

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kPlanMismatch: return "plan_mismatch";
    case ViolationKind::kNoReplica: return "no_replica";
    case ViolationKind::kTooManyReplicas: return "too_many_replicas";
    case ViolationKind::kDuplicateServer: return "duplicate_server";
    case ViolationKind::kServerOutOfRange: return "server_out_of_range";
    case ViolationKind::kLadderIndexOutOfRange:
      return "ladder_index_out_of_range";
    case ViolationKind::kStorageOverflow: return "storage_overflow";
    case ViolationKind::kBandwidthOverflow: return "bandwidth_overflow";
    case ViolationKind::kCachedStorageDrift: return "cached_storage_drift";
    case ViolationKind::kCachedBandwidthDrift:
      return "cached_bandwidth_drift";
    case ViolationKind::kCachedObjectiveDrift:
      return "cached_objective_drift";
    case ViolationKind::kCachedOverflowDrift: return "cached_overflow_drift";
    case ViolationKind::kCachedMaxLoadDrift: return "cached_max_load_drift";
    case ViolationKind::kPrefixFractionOutOfRange:
      return "prefix_fraction_out_of_range";
  }
  return "unknown";
}

std::string Violation::to_string() const {
  std::ostringstream os;
  os << violation_kind_name(kind);
  if (video != kNone) os << " video=" << video;
  if (server != kNone) os << " server=" << server;
  os << " actual=" << actual << " limit=" << limit
     << " margin=" << margin();
  return os.str();
}

bool AuditReport::has(ViolationKind kind) const { return count(kind) > 0; }

std::size_t AuditReport::count(ViolationKind kind) const {
  std::size_t total = 0;
  for (const Violation& v : violations) {
    if (v.kind == kind) ++total;
  }
  return total;
}

bool AuditReport::ok_ignoring(ViolationKind kind) const {
  for (const Violation& v : violations) {
    if (v.kind != kind) return false;
  }
  return true;
}

std::string AuditReport::summary() const {
  if (ok()) {
    std::ostringstream os;
    os << "all " << checks_performed << " checks passed";
    return os.str();
  }
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  for (const Violation& v : violations) os << "\n  " << v.to_string();
  return os.str();
}

void AuditReport::write_json(std::ostream& os) const {
  os << "{\"ok\": " << (ok() ? "true" : "false")
     << ", \"checks\": " << checks_performed << ", \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (i > 0) os << ", ";
    os << "{\"kind\": \"" << violation_kind_name(v.kind) << "\"";
    if (v.video != Violation::kNone) os << ", \"video\": " << v.video;
    if (v.server != Violation::kNone) os << ", \"server\": " << v.server;
    os << ", \"actual\": " << v.actual << ", \"limit\": " << v.limit
       << ", \"margin\": " << v.margin() << "}";
  }
  os << "]}\n";
}

LayoutAuditor::LayoutAuditor(Limits limits) : limits_(limits) {
  require(limits_.num_servers >= 1, "LayoutAuditor: need a server");
}

AuditReport LayoutAuditor::audit(
    const Layout& layout, const ReplicationPlan* plan,
    const std::vector<double>* popularity,
    const std::vector<double>* prefix_fraction) const {
  const std::size_t n = limits_.num_servers;
  const std::size_t m = layout.num_videos();
  require(popularity == nullptr || popularity->size() == m,
          "LayoutAuditor: popularity size mismatch");
  require(prefix_fraction == nullptr || prefix_fraction->size() == m,
          "LayoutAuditor: prefix-fraction size mismatch");

  AuditReport report;
  if (plan != nullptr && plan->replicas.size() != m) {
    add(report, ViolationKind::kPlanMismatch, Violation::kNone,
        Violation::kNone, static_cast<double>(m),
        static_cast<double>(plan->replicas.size()));
  }

  std::vector<std::size_t> stored(n, 0);
  // Fractional storage in replica-slot units: sum of f_i over hosted
  // replicas (Eq. 4 under the prefix model), re-derived from the raw
  // assignment independently of any usage helper.
  std::vector<double> fractional_stored(n, 0.0);
  std::vector<double> load_share(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const auto& servers = layout.assignment[i];
    if (plan != nullptr && i < plan->replicas.size() &&
        servers.size() != plan->replicas[i]) {
      add(report, ViolationKind::kPlanMismatch, i, Violation::kNone,
          static_cast<double>(servers.size()),
          static_cast<double>(plan->replicas[i]));
    }
    check_structure(report, i, servers, n);
    double fraction = 1.0;
    if (prefix_fraction != nullptr) {
      ++report.checks_performed;
      fraction = (*prefix_fraction)[i];
      if (!(fraction > 0.0 && fraction <= 1.0)) {
        add(report, ViolationKind::kPrefixFractionOutOfRange, i,
            Violation::kNone, fraction, 1.0);
        fraction = 1.0;  // accounted whole; the range violation is reported
      }
    }
    const double share =
        popularity == nullptr || servers.empty()
            ? 0.0
            : (*popularity)[i] / static_cast<double>(servers.size());
    for (std::size_t s : servers) {
      if (s >= n) continue;  // already reported
      ++stored[s];
      fractional_stored[s] += fraction;
      load_share[s] += share * fraction;
    }
  }

  const bool check_bandwidth =
      popularity != nullptr &&
      limits_.bandwidth_bps_per_server !=
          std::numeric_limits<double>::infinity() &&
      limits_.expected_peak_requests > 0.0 && limits_.bitrate_bps > 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    ++report.checks_performed;
    if (prefix_fraction != nullptr) {
      if (fractional_stored[s] >
          static_cast<double>(limits_.capacity_per_server) *
              kContinuousSlack) {
        add(report, ViolationKind::kStorageOverflow, Violation::kNone, s,
            fractional_stored[s],
            static_cast<double>(limits_.capacity_per_server));
      }
    } else if (stored[s] > limits_.capacity_per_server) {
      add(report, ViolationKind::kStorageOverflow, Violation::kNone, s,
          static_cast<double>(stored[s]),
          static_cast<double>(limits_.capacity_per_server));
    }
    if (check_bandwidth) {
      ++report.checks_performed;
      const double load_bps = load_share[s] *
                              limits_.expected_peak_requests *
                              limits_.bitrate_bps;
      if (load_bps >
          limits_.bandwidth_bps_per_server * kContinuousSlack) {
        add(report, ViolationKind::kBandwidthOverflow, Violation::kNone, s,
            load_bps, limits_.bandwidth_bps_per_server);
      }
    }
  }
  return report;
}

AuditReport LayoutAuditor::audit_solution(const ScalableProblem& problem,
                                          const ScalableSolution& solution) {
  const std::size_t n = problem.cluster.num_servers;
  require(solution.bitrate_index.size() == problem.videos.count() &&
              solution.placement.size() == problem.videos.count(),
          "LayoutAuditor: solution/problem size mismatch");
  require(solution.prefix_fraction.empty() ||
              solution.prefix_fraction.size() == problem.videos.count(),
          "LayoutAuditor: prefix-fraction size mismatch");

  AuditReport report;
  for (std::size_t i = 0; i < solution.num_videos(); ++i) {
    ++report.checks_performed;
    if (solution.bitrate_index[i] >= problem.ladder.size()) {
      add(report, ViolationKind::kLadderIndexOutOfRange, i, Violation::kNone,
          static_cast<double>(solution.bitrate_index[i]),
          static_cast<double>(problem.ladder.size()) - 1.0);
    }
    if (!solution.prefix_fraction.empty()) {
      ++report.checks_performed;
      const double f = solution.prefix_fraction[i];
      if (!(f >= problem.min_prefix_fraction && f <= 1.0)) {
        add(report, ViolationKind::kPrefixFractionOutOfRange, i,
            Violation::kNone, f, 1.0);
      }
    }
    check_structure(report, i, solution.placement[i], n);
  }

  const FreshUsage usage = recompute_usage(problem, solution);
  for (std::size_t s = 0; s < n; ++s) {
    report.checks_performed += 2;
    if (usage.storage_bytes[s] >
        problem.cluster.storage_bytes_per_server * kContinuousSlack) {
      add(report, ViolationKind::kStorageOverflow, Violation::kNone, s,
          usage.storage_bytes[s], problem.cluster.storage_bytes_per_server);
    }
    if (usage.bandwidth_bps[s] >
        problem.cluster.bandwidth_bps_per_server * kContinuousSlack) {
      add(report, ViolationKind::kBandwidthOverflow, Violation::kNone, s,
          usage.bandwidth_bps[s], problem.cluster.bandwidth_bps_per_server);
    }
  }
  return report;
}

AuditReport LayoutAuditor::audit_state(const IncrementalState& state,
                                       double drift_tolerance) {
  const ScalableProblem& problem = state.problem();
  // The SoA state keeps no solution object live; materialize one snapshot
  // and run every structural + drift check against it.
  const ScalableSolution solution = state.to_solution();
  AuditReport report = audit_solution(problem, solution);

  const FreshUsage usage = recompute_usage(problem, solution);
  const std::size_t n = problem.cluster.num_servers;
  for (std::size_t s = 0; s < n; ++s) {
    report.checks_performed += 2;
    if (!drift_close(state.storage_bytes()[s], usage.storage_bytes[s],
                     drift_tolerance)) {
      add(report, ViolationKind::kCachedStorageDrift, Violation::kNone, s,
          state.storage_bytes()[s], usage.storage_bytes[s]);
    }
    if (!drift_close(state.bandwidth_bps()[s], usage.bandwidth_bps[s],
                     drift_tolerance)) {
      add(report, ViolationKind::kCachedBandwidthDrift, Violation::kNone, s,
          state.bandwidth_bps()[s], usage.bandwidth_bps[s]);
    }
  }

  report.checks_performed += 3;
  const double fresh_objective =
      recompute_objective(problem, solution, usage);
  if (!drift_close(state.objective(), fresh_objective, drift_tolerance)) {
    add(report, ViolationKind::kCachedObjectiveDrift, Violation::kNone,
        Violation::kNone, state.objective(), fresh_objective);
  }

  const double cap = problem.cluster.bandwidth_bps_per_server;
  double fresh_overflow = 0.0;
  double fresh_max = 0.0;
  for (double load : usage.bandwidth_bps) {
    if (load > cap) fresh_overflow += (load - cap) / cap;
    fresh_max = std::max(fresh_max, load);
  }
  if (!drift_close(state.relative_bandwidth_overflow(), fresh_overflow,
                   drift_tolerance)) {
    add(report, ViolationKind::kCachedOverflowDrift, Violation::kNone,
        Violation::kNone, state.relative_bandwidth_overflow(),
        fresh_overflow);
  }
  if (!drift_close(state.max_bandwidth_bps(), fresh_max, drift_tolerance)) {
    add(report, ViolationKind::kCachedMaxLoadDrift, Violation::kNone,
        Violation::kNone, state.max_bandwidth_bps(), fresh_max);
  }
  return report;
}

}  // namespace vodrep
