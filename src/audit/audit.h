// Constraint-audit layer: the paper's Eqs. 1–7 as one machine-checkable
// contract.
//
// Every solver in this repository ultimately promises the same things:
//   Eq. 4 — per-server storage within capacity;
//   Eq. 5 — per-server expected outgoing bandwidth within the link budget;
//   Eq. 6 — the replicas of one video live on distinct, in-range servers;
//   Eq. 7 — every video has between 1 and N replicas;
// and the incremental SA state additionally promises that its journaled
// running sums still equal a from-scratch evaluation of the Eq. 1 objective
// and the Eq. 2/3 imbalance.  `LayoutAuditor` checks all of it and returns a
// structured `AuditReport` (violation kind + video/server ids + margin)
// instead of a bare throw, so tests can assert on the exact failure, the
// `vodrep_audit` CLI can print or JSON-emit it, and solvers can end their
// runs under the same audit (see VODREP_CONTRACTS_ENABLED in util/check.h).
//
// The auditor deliberately re-derives every quantity from the raw assignment
// and problem fields — it never calls the usage/objective helpers it is
// auditing — so a bug in the incremental bookkeeping (or in those helpers)
// cannot hide itself.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "src/core/incremental_state.h"
#include "src/core/layout.h"
#include "src/core/replication.h"
#include "src/core/scalable.h"

namespace vodrep {

enum class ViolationKind {
  kPlanMismatch,          ///< layout does not realize the stated plan
  kNoReplica,             ///< r_i = 0 (Eq. 7 lower bound)
  kTooManyReplicas,       ///< r_i > N (Eq. 7 upper bound)
  kDuplicateServer,       ///< one video hosted twice on a server (Eq. 6)
  kServerOutOfRange,      ///< server id >= N (Eq. 6)
  kLadderIndexOutOfRange, ///< bitrate index outside the ladder
  kStorageOverflow,       ///< per-server storage above capacity (Eq. 4)
  kBandwidthOverflow,     ///< per-server load above the link budget (Eq. 5)
  kCachedStorageDrift,    ///< IncrementalState storage sum != from-scratch
  kCachedBandwidthDrift,  ///< IncrementalState load sum != from-scratch
  kCachedObjectiveDrift,  ///< cached Eq. 1 objective != from-scratch
  kCachedOverflowDrift,   ///< cached soft-overflow term != from-scratch
  kCachedMaxLoadDrift,    ///< cached Eq. 2 max term != from-scratch
  kPrefixFractionOutOfRange,  ///< f_i outside [min_prefix_fraction, 1]
};

/// Stable snake_case name (used in reports and the CLI's JSON output).
[[nodiscard]] const char* violation_kind_name(ViolationKind kind);

/// One broken constraint, localized to the video and/or server involved.
struct Violation {
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  ViolationKind kind;
  std::size_t video = kNone;   ///< kNone when the check is per-server/global
  std::size_t server = kNone;  ///< kNone when the check is per-video/global
  double actual = 0.0;         ///< measured value
  double limit = 0.0;          ///< bound it had to satisfy

  /// How far past the bound the measurement is (units of the check).
  [[nodiscard]] double margin() const { return actual - limit; }
  [[nodiscard]] std::string to_string() const;
};

/// The outcome of one audit: every violation found, never just the first.
struct AuditReport {
  std::vector<Violation> violations;
  std::size_t checks_performed = 0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] bool has(ViolationKind kind) const;
  [[nodiscard]] std::size_t count(ViolationKind kind) const;
  /// True when every violation is of `kind` (or there are none) — used by
  /// solvers whose bandwidth constraint is soft (SA, greedy) to tolerate
  /// Eq. 5 overflow while still rejecting everything else.
  [[nodiscard]] bool ok_ignoring(ViolationKind kind) const;
  /// Human-readable one-line-per-violation summary ("all checks passed"
  /// when ok()).
  [[nodiscard]] std::string summary() const;
  /// Machine-readable form: {"ok": ..., "checks": ..., "violations": [...]}.
  void write_json(std::ostream& os) const;
};

class LayoutAuditor {
 public:
  /// Cluster bounds for fixed-rate layout audits.  Bandwidth (Eq. 5) is
  /// checked only when a finite link budget and a positive load scaling
  /// (expected_peak_requests * bitrate_bps) are both given, since the
  /// exchange format carries neither.
  struct Limits {
    std::size_t num_servers = 0;
    std::size_t capacity_per_server = 0;  ///< replica slots (Eq. 4)
    double bandwidth_bps_per_server =
        std::numeric_limits<double>::infinity();  ///< B_j (Eq. 5)
    /// Fixed-rate load model: l_j [bps] = share_j * lambda*T * b.
    double expected_peak_requests = 0.0;  ///< lambda * T
    double bitrate_bps = 0.0;             ///< common stream bit rate b
  };

  explicit LayoutAuditor(Limits limits);

  /// Eqs. 4–7 on a fixed-rate layout.  `plan` (optional) adds the
  /// plan-realization check; `popularity` (optional, normalized, one entry
  /// per video) enables the Eq. 5 expected-load check.  `prefix_fraction`
  /// (optional, one entry per video in (0, 1]) switches storage accounting
  /// to the prefix model: a replica of video i occupies f_i replica slots
  /// and carries f_i of the load share, and out-of-range fractions are
  /// reported as kPrefixFractionOutOfRange.  All fractional bounds are
  /// re-derived here from the raw inputs, never via the usage helpers.
  [[nodiscard]] AuditReport audit(
      const Layout& layout, const ReplicationPlan* plan = nullptr,
      const std::vector<double>* popularity = nullptr,
      const std::vector<double>* prefix_fraction = nullptr) const;

  /// Eqs. 4–7 on a scalable-rate solution, with storage and bandwidth
  /// re-derived from first principles (never via compute_usage).
  [[nodiscard]] static AuditReport audit_solution(
      const ScalableProblem& problem, const ScalableSolution& solution);

  /// audit_solution on the live solution, plus the Eq. 1/2/3 cross-check of
  /// every cached running sum in `state` against a from-scratch
  /// recomputation (relative tolerance `drift_tolerance`).
  [[nodiscard]] static AuditReport audit_state(const IncrementalState& state,
                                               double drift_tolerance = 1e-7);

 private:
  Limits limits_;
};

}  // namespace vodrep
