#include "src/core/sa_solver.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/anneal/parallel_tempering.h"
#include "src/audit/audit.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/error.h"

namespace vodrep {

// The whole point of this solver is the delta-evaluation path; a silent
// fallback to the copy-based engine loop would be a perf regression.
static_assert(InPlaceAnnealProblem<ScalableSaProblem>);
static_assert(DeferredBestAnnealProblem<ScalableSaProblem>);

namespace {

/// Attempts of O(1) rejection sampling for "random video absent from this
/// server" before falling back to the exact O(M) scan.  Most videos are
/// absent from any given server (mean degree << N), so the fallback only
/// triggers when the server is nearly full — a state worth the scan.
constexpr std::size_t kAddReplicaRejectionAttempts = 32;

}  // namespace

ScalableSaProblem::ScalableSaProblem(const ScalableProblem& problem,
                                     const SaSolverOptions& options)
    : problem_(problem), options_(options) {
  problem_.validate();
  require(options_.bandwidth_penalty >= 0.0,
          "ScalableSaProblem: negative bandwidth penalty");
  require(options_.increase_rate_probability >= 0.0 &&
              options_.increase_rate_probability <= 1.0,
          "ScalableSaProblem: increase_rate_probability out of [0, 1]");
  require(options_.shrink_probability >= 0.0 &&
              options_.shrink_probability <= 1.0,
          "ScalableSaProblem: shrink_probability out of [0, 1]");
  require(options_.prefix_fraction_probability >= 0.0 &&
              options_.prefix_fraction_probability <= 1.0,
          "ScalableSaProblem: prefix_fraction_probability out of [0, 1]");
  require(options_.prefix_fraction_step > 0.0 &&
              options_.prefix_fraction_step <= 1.0,
          "ScalableSaProblem: prefix_fraction_step out of (0, 1]");
}

ScalableSolution ScalableSaProblem::initial(Rng& rng) const {
  (void)rng;  // the paper's initial solution is deterministic
  ScalableSolution solution = lowest_rate_round_robin(problem_);
  (void)repair(solution);  // shed bandwidth overflow where possible
  return solution;
}

double ScalableSaProblem::cost(const State& state) const {
  if (obs::metrics_enabled()) {
    full_evaluations_.fetch_add(1, std::memory_order_relaxed);
  }
  const ServerUsage usage = compute_usage(problem_, state);
  double overflow = 0.0;
  const double capacity = problem_.cluster.bandwidth_bps_per_server;
  for (double load : usage.bandwidth_bps) {
    if (load > capacity) overflow += (load - capacity) / capacity;
  }
  const double objective =
      objective_value(state.bitrates(problem_.ladder), state.replicas(),
                      usage.bandwidth_bps, problem_.cluster.num_servers,
                      problem_.weights);
  return -objective + options_.bandwidth_penalty * overflow;
}

double ScalableSaProblem::incremental_cost(const IncrementalState& inc) const {
  return -inc.objective() +
         options_.bandwidth_penalty * inc.relative_bandwidth_overflow();
}

bool ScalableSaProblem::repair_incremental(IncrementalState& inc) const {
  // O(1) fast path: the overflow counters are maintained move-by-move, so
  // the common nothing-to-fix case costs two loads instead of an O(N) scan.
  if (!inc.any_storage_overflow() && !inc.any_bandwidth_overflow()) {
    return true;
  }
  if (obs::metrics_enabled()) {
    repairs_.fetch_add(1, std::memory_order_relaxed);
  }
  const double storage_cap = problem_.cluster.storage_bytes_per_server;
  const double bandwidth_cap = problem_.cluster.bandwidth_bps_per_server;
  const std::size_t n = problem_.cluster.num_servers;
  // Iterate until every server fits; each action strictly reduces either a
  // ladder index or a replica count, so the loop terminates.  Unlike the
  // seed implementation this never rebuilds usage from scratch — the live
  // per-server vectors are consulted (O(N)) and updated by each action.
  for (;;) {
    const std::vector<double>& storage = inc.storage_bytes();
    const std::vector<double>& bandwidth = inc.bandwidth_bps();
    if (!inc.any_storage_overflow() && !inc.any_bandwidth_overflow()) {
      return true;
    }
    std::size_t worst = n;
    for (std::size_t s = 0; s < n; ++s) {
      if (storage[s] > storage_cap || bandwidth[s] > bandwidth_cap) {
        worst = s;
        break;
      }
    }
    if (worst == n) return true;

    // Prefer the cheapest quality loss: among videos on the server that can
    // still shed something (rate above the floor, or a droppable replica),
    // pick the lowest-rate one, ties to the colder (higher-index) video.
    // One O(hosted) min scan per action — the seed implementation sorted
    // the whole hosted list per action, which dominated the repair profile.
    // The key is a strict total order, so the shed order does not depend on
    // the reverse index's swap-remove permutation.
    constexpr std::uint32_t kNone = 0xffffffffu;
    std::uint32_t pick = kNone;
    std::size_t pick_rate = 0;
    for (std::uint32_t video : inc.videos_on(worst)) {
      const std::size_t rate = inc.bitrate_index(video);
      if (rate == 0 && inc.replica_count(video) <= 1) continue;
      if (pick == kNone || rate < pick_rate ||
          (rate == pick_rate && video > pick)) {
        pick = video;
        pick_rate = rate;
      }
    }
    if (pick == kNone) {
      // Everything on the server is at the floor rate with a single replica.
      // Last resort under the prefix model: snap one video's stored fraction
      // to the floor (one-shot per video, strictly decreasing, so the loop
      // still terminates).  Pick the fullest prefix, ties to the colder
      // (higher-index) video — a strict total order like the main pick.
      const double fraction_floor = problem_.min_prefix_fraction;
      std::uint32_t frac_pick = kNone;
      double frac_best = fraction_floor;
      for (std::uint32_t video : inc.videos_on(worst)) {
        const double f = inc.prefix_fraction(video);
        if (f > frac_best || (f == frac_best && f > fraction_floor &&
                              (frac_pick == kNone || video > frac_pick))) {
          frac_pick = video;
          frac_best = f;
        }
      }
      if (frac_pick != kNone) {
        inc.set_prefix_fraction(frac_pick, fraction_floor);
        continue;
      }
      // Storage overflow is then unfixable; bandwidth overflow is tolerated
      // (soft constraint, penalized in the cost).
      return !inc.any_storage_overflow();
    }
    if (pick_rate > 0) {
      inc.set_bitrate(pick, pick_rate - 1);
    } else {
      inc.drop_replica(pick, worst);
    }
  }
}

bool ScalableSaProblem::repair(State& state) const {
  IncrementalState inc(problem_, std::move(state));
  const bool ok = repair_incremental(inc);
  state = inc.to_solution();
  return ok;
}

bool ScalableSaProblem::propose_move(IncrementalState& inc,
                                     std::vector<std::uint32_t>& candidates,
                                     Rng& rng) const {
  const std::size_t n = problem_.cluster.num_servers;
  const std::size_t m = problem_.videos.count();
  const auto server = static_cast<std::size_t>(rng.uniform_index(n));

  auto try_increase_rate = [&]() {
    candidates.clear();
    for (std::uint32_t v : inc.videos_on(server)) {
      if (inc.bitrate_index(v) + 1 < problem_.ladder.size()) {
        candidates.push_back(v);
      }
    }
    if (candidates.empty()) return false;
    const std::uint32_t pick = candidates[rng.uniform_index(candidates.size())];
    inc.set_bitrate(pick, inc.bitrate_index(pick) + 1);
    return true;
  };
  auto try_add_replica = [&]() {
    // Uniform draw over the videos absent from this server: rejection
    // sampling first (O(1) expected), exact scan as the rare fallback.
    for (std::size_t attempt = 0; attempt < kAddReplicaRejectionAttempts;
         ++attempt) {
      const auto v = static_cast<std::size_t>(rng.uniform_index(m));
      if (inc.replica_count(v) < n && !inc.is_hosted(v, server)) {
        inc.add_replica(v, server);
        return true;
      }
    }
    candidates.clear();
    for (std::size_t v = 0; v < m; ++v) {
      if (inc.replica_count(v) < n && !inc.is_hosted(v, server)) {
        candidates.push_back(static_cast<std::uint32_t>(v));
      }
    }
    if (candidates.empty()) return false;
    const std::uint32_t pick = candidates[rng.uniform_index(candidates.size())];
    inc.add_replica(pick, server);
    return true;
  };
  auto try_shrink = [&]() {
    // Lower a hosted video's rate, or drop its replica here (never the last
    // one).  Uphill in objective, but it frees storage so later growth
    // moves can re-pack — the escape hatch from the storage-full plateau.
    candidates.clear();
    for (std::uint32_t v : inc.videos_on(server)) {
      if (inc.bitrate_index(v) == 0 && inc.replica_count(v) <= 1) {
        continue;
      }
      candidates.push_back(v);
    }
    if (candidates.empty()) return false;
    const std::uint32_t pick = candidates[rng.uniform_index(candidates.size())];
    if (inc.bitrate_index(pick) > 0 &&
        (inc.replica_count(pick) <= 1 || rng.bernoulli(0.5))) {
      inc.set_bitrate(pick, inc.bitrate_index(pick) - 1);
    } else {
      inc.drop_replica(pick, server);
    }
    return true;
  };

  auto try_prefix_fraction = [&]() {
    // Nudge one hosted video's stored prefix fraction by one step, clamped
    // to [min_prefix_fraction, 1].  Shrinking trades rejection-free quality
    // for storage headroom; growing moves back toward whole files.
    const double floor = problem_.min_prefix_fraction;
    candidates.clear();
    for (std::uint32_t v : inc.videos_on(server)) candidates.push_back(v);
    if (candidates.empty()) return false;
    const std::uint32_t pick = candidates[rng.uniform_index(candidates.size())];
    const double current = inc.prefix_fraction(pick);
    const double step = options_.prefix_fraction_step;
    const double target = rng.bernoulli(0.5)
                              ? std::min(1.0, current + step)
                              : std::max(floor, current - step);
    if (target == current) return false;  // already at the clamp boundary
    inc.set_prefix_fraction(pick, target);
    return true;
  };

  // The probability gate short-circuits at the default 0.0 before consuming
  // a draw, so disabled runs replay the pre-asset RNG stream exactly.
  if (options_.prefix_fraction_probability > 0.0 &&
      rng.bernoulli(options_.prefix_fraction_probability)) {
    return try_prefix_fraction();
  }
  if (rng.bernoulli(options_.shrink_probability)) {
    return try_shrink();
  }
  if (rng.bernoulli(options_.increase_rate_probability)) {
    return try_increase_rate() || try_add_replica();
  }
  return try_add_replica() || try_increase_rate();
}

ScalableSolution ScalableSaProblem::neighbor(const State& state,
                                             Rng& rng) const {
  // Copy-based entry point (kept for the AnnealProblem concept, calibration,
  // and tests): runs the same move + repair as the in-place path against a
  // freshly built incremental state.
  IncrementalState inc(problem_, state);
  std::vector<std::uint32_t> candidates;
  if (!propose_move(inc, candidates, rng)) return state;  // saturated server
  if (!repair_incremental(inc)) return state;             // irreparable
  return inc.to_solution();
}

ScalableSaProblem::Scratch ScalableSaProblem::make_scratch(State state) const {
  Scratch scratch{IncrementalState(problem_, std::move(state)), 0, 0.0, 0.0,
                  0,   0.0, {}};
  scratch.cost_before = incremental_cost(scratch.state);
  scratch.cost_after = scratch.cost_before;
  scratch.best_cost = scratch.cost_before;
  scratch.best_mark = 0;
  return scratch;
}

bool ScalableSaProblem::propose(Scratch& scratch, Rng& rng) const {
  // scratch.cost_before already holds the committed configuration's cost
  // (seeded by make_scratch, refreshed by commit), so the pre-move
  // evaluation the seed implementation paid here is free.
  scratch.mark = scratch.state.checkpoint();
  if (!propose_move(scratch.state, scratch.candidates, rng)) return false;
  if (!repair_incremental(scratch.state)) {
    scratch.state.rollback(scratch.mark);
    return false;
  }
#if VODREP_CONTRACTS_ENABLED
  // A successful move+repair must leave every server within storage (Eq. 4);
  // bandwidth may overflow (soft constraint, penalized in the cost).
  for (double bytes : scratch.state.storage_bytes()) {
    VODREP_DCHECK_LE(bytes,
                     problem_.cluster.storage_bytes_per_server * (1.0 + 1e-9),
                     "propose: repair left a server over storage capacity");
  }
#endif
  return true;
}

double ScalableSaProblem::delta_cost(const Scratch& scratch) const {
  if (obs::metrics_enabled()) {
    delta_evaluations_.fetch_add(1, std::memory_order_relaxed);
  }
  scratch.cost_after = incremental_cost(scratch.state);
  return scratch.cost_after - scratch.cost_before;
}

void ScalableSaProblem::commit(Scratch& scratch) const {
  // Deferred best tracking: the journal stays alive across commits so the
  // best configuration remains reachable by rollback.  A new best is one
  // mark assignment; extract_best() pays the single O(M) materialization at
  // the end of the chain.
  scratch.cost_before = scratch.cost_after;
  if (scratch.cost_after < scratch.best_cost) {
    scratch.best_cost = scratch.cost_after;
    scratch.best_mark = scratch.state.checkpoint();
    // The prefix behind the best mark can never be rolled back to again;
    // dropping it (rarely — the erase is O(journal)) bounds journal memory
    // to the since-best tail.
    constexpr IncrementalState::Checkpoint kTrimThreshold = 1u << 16;
    if (scratch.best_mark >= kTrimThreshold) {
      scratch.state.forget_history(scratch.best_mark);
      scratch.best_mark = 0;
    }
  }
}

void ScalableSaProblem::revert(Scratch& scratch) const {
  // cost_before still describes the restored configuration (rollback undoes
  // the running sums up to float-drift of ulp order).
  scratch.state.rollback(scratch.mark);
}

ScalableSolution ScalableSaProblem::extract(const Scratch& scratch) const {
  return scratch.state.to_solution();
}

ScalableSolution ScalableSaProblem::extract_best(Scratch& scratch) const {
  scratch.state.rollback(scratch.best_mark);
  return scratch.state.to_solution();
}

ScalableSaProblem::EvalCounts ScalableSaProblem::eval_counts() const {
  return EvalCounts{full_evaluations_.load(std::memory_order_relaxed),
                    delta_evaluations_.load(std::memory_order_relaxed),
                    repairs_.load(std::memory_order_relaxed)};
}

SaSolverResult solve_scalable(const ScalableProblem& problem,
                              std::uint64_t seed,
                              const SaSolverOptions& options,
                              ThreadPool* pool) {
  require(options.chains >= 1, "solve_scalable: need at least one chain");
  VODREP_TRACE_SCOPE("sa.solve");
  VODREP_PROFILE_PHASE("sa.solve");
  const ScalableSaProblem sa_problem(problem, options);
  SaSolverResult result;
  if (options.chains == 1) {
    Rng rng(seed);
    result.anneal = anneal(sa_problem, rng, options.anneal);
  } else if (options.independent_chains) {
    result.anneal =
        anneal_multichain(sa_problem, seed, options.chains, options.anneal,
                          pool);
  } else {
    AnnealOptions pt_options = options.anneal;
    pt_options.chains = options.chains;
    result.anneal =
        anneal_parallel_tempering(sa_problem, seed, pt_options, pool);
  }
  {
    VODREP_PROFILE_PHASE("extract");
    result.solution = result.anneal.best_state;
    result.objective = solution_objective(problem, result.solution);
    result.feasible = is_feasible(problem, result.solution);
  }

  if (obs::metrics_enabled()) {
    // End-of-solve fold into the metrics registry: bulk adds of the engine's
    // own instrumentation, so the Metropolis hot loop itself never touches
    // the registry and the exported counters reconcile bit-exactly with the
    // returned AnnealResult (tests/obs_integration_test.cc).
    obs::MetricsRegistry& registry = obs::metrics();
    registry.counter("sa.solves").inc();
    registry.counter("sa.chains").add(options.chains);
    registry.counter("sa.moves_proposed").add(result.anneal.moves_proposed);
    registry.counter("sa.moves_accepted").add(result.anneal.moves_accepted);
    registry.counter("sa.moves_noop").add(result.anneal.moves_noop);
    registry.counter("sa.temperature_steps")
        .add(result.anneal.temperature_steps);
    const ScalableSaProblem::EvalCounts evals = sa_problem.eval_counts();
    registry.counter("sa.evaluations_full").add(evals.full_evaluations);
    registry.counter("sa.evaluations_delta").add(evals.delta_evaluations);
    registry.counter("sa.repairs").add(evals.repairs);
    registry.gauge("sa.best_objective").set(result.objective);
    registry.gauge("sa.final_temperature")
        .set(result.anneal.final_temperature);
    // Tempering instrumentation: exchange-phase totals plus a per-chain
    // breakdown keyed sa.chain.<k>.* so runs can see which rung of the
    // temperature ladder did the work.
    registry.counter("sa.swap_attempts").add(result.anneal.swap_attempts);
    registry.counter("sa.swap_accepts").add(result.anneal.swap_accepts);
    for (std::size_t k = 0; k < result.anneal.chains.size(); ++k) {
      const AnnealChainStats& chain = result.anneal.chains[k];
      const std::string prefix = "sa.chain." + std::to_string(k) + ".";
      registry.counter(prefix + "moves_proposed").add(chain.moves_proposed);
      registry.counter(prefix + "moves_accepted").add(chain.moves_accepted);
      registry.counter(prefix + "moves_noop").add(chain.moves_noop);
      registry.counter(prefix + "swaps_accepted").add(chain.swaps_accepted);
      registry.gauge(prefix + "best_cost").set(chain.best_cost);
    }
  }
#if VODREP_CONTRACTS_ENABLED
  {
    const AuditReport report =
        LayoutAuditor::audit_solution(problem, result.solution);
    if (result.feasible) {
      VODREP_DCHECK(report.ok(), report.summary());
    } else {
      // Eq. 5 is the solver's soft constraint: when the offered load exceeds
      // the cluster's outgoing bandwidth no solution satisfies it and the
      // annealer returns the least-overflowing one; everything else
      // (structure, Eq. 4 storage) must still hold.
      VODREP_DCHECK(report.ok_ignoring(ViolationKind::kBandwidthOverflow),
                    report.summary());
    }
  }
#endif
  return result;
}

}  // namespace vodrep
