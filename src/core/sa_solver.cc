#include "src/core/sa_solver.h"

#include <algorithm>
#include <vector>

#include "src/util/error.h"

namespace vodrep {
namespace {

/// Videos hosted on server `s` (by index into the solution).
std::vector<std::size_t> videos_on_server(const ScalableSolution& solution,
                                          std::size_t s) {
  std::vector<std::size_t> videos;
  for (std::size_t i = 0; i < solution.placement.size(); ++i) {
    const auto& servers = solution.placement[i];
    if (std::find(servers.begin(), servers.end(), s) != servers.end()) {
      videos.push_back(i);
    }
  }
  return videos;
}

}  // namespace

ScalableSaProblem::ScalableSaProblem(const ScalableProblem& problem,
                                     const SaSolverOptions& options)
    : problem_(problem), options_(options) {
  problem_.validate();
  require(options_.bandwidth_penalty >= 0.0,
          "ScalableSaProblem: negative bandwidth penalty");
  require(options_.increase_rate_probability >= 0.0 &&
              options_.increase_rate_probability <= 1.0,
          "ScalableSaProblem: increase_rate_probability out of [0, 1]");
  require(options_.shrink_probability >= 0.0 &&
              options_.shrink_probability <= 1.0,
          "ScalableSaProblem: shrink_probability out of [0, 1]");
}

ScalableSolution ScalableSaProblem::initial(Rng& rng) const {
  (void)rng;  // the paper's initial solution is deterministic
  ScalableSolution solution = lowest_rate_round_robin(problem_);
  (void)repair(solution);  // shed bandwidth overflow where possible
  return solution;
}

double ScalableSaProblem::cost(const State& state) const {
  const ServerUsage usage = compute_usage(problem_, state);
  double overflow = 0.0;
  const double capacity = problem_.cluster.bandwidth_bps_per_server;
  for (double load : usage.bandwidth_bps) {
    if (load > capacity) overflow += (load - capacity) / capacity;
  }
  const double objective =
      objective_value(state.bitrates(problem_.ladder), state.replicas(),
                      usage.bandwidth_bps, problem_.cluster.num_servers,
                      problem_.weights);
  return -objective + options_.bandwidth_penalty * overflow;
}

bool ScalableSaProblem::repair(State& state) const {
  const double storage_cap = problem_.cluster.storage_bytes_per_server;
  const double bandwidth_cap = problem_.cluster.bandwidth_bps_per_server;
  // Iterate until every server fits; each action strictly reduces either a
  // ladder index or a replica count, so the loop terminates.
  for (;;) {
    const ServerUsage usage = compute_usage(problem_, state);
    std::size_t worst = problem_.cluster.num_servers;
    for (std::size_t s = 0; s < problem_.cluster.num_servers; ++s) {
      if (usage.storage_bytes[s] > storage_cap ||
          usage.bandwidth_bps[s] > bandwidth_cap) {
        worst = s;
        break;
      }
    }
    if (worst == problem_.cluster.num_servers) return true;

    // Prefer the cheapest quality loss: among videos on the server, try the
    // lowest-rate ones first — lower their rate a notch, or evict their
    // replica here if already at the ladder floor (never the last replica).
    std::vector<std::size_t> hosted = videos_on_server(state, worst);
    std::sort(hosted.begin(), hosted.end(),
              [&](std::size_t a, std::size_t b) {
                if (state.bitrate_index[a] != state.bitrate_index[b]) {
                  return state.bitrate_index[a] < state.bitrate_index[b];
                }
                return a > b;  // colder video first
              });
    bool acted = false;
    for (std::size_t video : hosted) {
      if (state.bitrate_index[video] > 0) {
        --state.bitrate_index[video];
        acted = true;
        break;
      }
      if (state.placement[video].size() > 1) {
        auto& servers = state.placement[video];
        servers.erase(std::find(servers.begin(), servers.end(), worst));
        acted = true;
        break;
      }
    }
    if (!acted) {
      // Everything on the server is at the floor rate with a single replica.
      // Storage overflow is then unfixable; bandwidth overflow is tolerated
      // (soft constraint, penalized in the cost).
      const bool storage_ok = usage.storage_bytes[worst] <= storage_cap;
      return storage_ok &&
             std::all_of(usage.storage_bytes.begin(), usage.storage_bytes.end(),
                         [&](double b) { return b <= storage_cap; });
    }
  }
}

ScalableSolution ScalableSaProblem::neighbor(const State& state,
                                             Rng& rng) const {
  const std::size_t n = problem_.cluster.num_servers;
  const std::size_t m = problem_.videos.count();
  State next = state;
  const auto server = static_cast<std::size_t>(rng.uniform_index(n));

  auto try_increase_rate = [&]() {
    std::vector<std::size_t> hosted = videos_on_server(next, server);
    std::erase_if(hosted, [&](std::size_t v) {
      return next.bitrate_index[v] + 1 >= problem_.ladder.size();
    });
    if (hosted.empty()) return false;
    const std::size_t pick = hosted[rng.uniform_index(hosted.size())];
    ++next.bitrate_index[pick];
    return true;
  };
  auto try_add_replica = [&]() {
    std::vector<std::size_t> absent;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& servers = next.placement[i];
      if (servers.size() < n &&
          std::find(servers.begin(), servers.end(), server) == servers.end()) {
        absent.push_back(i);
      }
    }
    if (absent.empty()) return false;
    const std::size_t pick = absent[rng.uniform_index(absent.size())];
    next.placement[pick].push_back(server);
    return true;
  };

  auto try_shrink = [&]() {
    // Lower a hosted video's rate, or drop its replica here (never the last
    // one).  Uphill in objective, but it frees storage so later growth
    // moves can re-pack — the escape hatch from the storage-full plateau.
    std::vector<std::size_t> hosted = videos_on_server(next, server);
    std::erase_if(hosted, [&](std::size_t v) {
      return next.bitrate_index[v] == 0 && next.placement[v].size() <= 1;
    });
    if (hosted.empty()) return false;
    const std::size_t pick = hosted[rng.uniform_index(hosted.size())];
    if (next.bitrate_index[pick] > 0 &&
        (next.placement[pick].size() <= 1 || rng.bernoulli(0.5))) {
      --next.bitrate_index[pick];
    } else {
      auto& servers_of = next.placement[pick];
      servers_of.erase(std::find(servers_of.begin(), servers_of.end(), server));
    }
    return true;
  };

  bool moved;
  if (rng.bernoulli(options_.shrink_probability)) {
    moved = try_shrink();
  } else if (rng.bernoulli(options_.increase_rate_probability)) {
    moved = try_increase_rate() || try_add_replica();
  } else {
    moved = try_add_replica() || try_increase_rate();
  }
  if (!moved) return state;           // saturated server: no-op move
  if (!repair(next)) return state;    // irreparable storage overflow
  return next;
}

SaSolverResult solve_scalable(const ScalableProblem& problem,
                              std::uint64_t seed,
                              const SaSolverOptions& options,
                              ThreadPool* pool) {
  require(options.chains >= 1, "solve_scalable: need at least one chain");
  const ScalableSaProblem sa_problem(problem, options);
  SaSolverResult result;
  if (options.chains == 1) {
    Rng rng(seed);
    result.anneal = anneal(sa_problem, rng, options.anneal);
  } else {
    result.anneal =
        anneal_multichain(sa_problem, seed, options.chains, options.anneal,
                          pool);
  }
  result.solution = result.anneal.best_state;
  result.objective = solution_objective(problem, result.solution);
  result.feasible = is_feasible(problem, result.solution);
  return result;
}

}  // namespace vodrep
