#include "src/core/sa_solver.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/audit/audit.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/error.h"

namespace vodrep {

// The whole point of this solver is the delta-evaluation path; a silent
// fallback to the copy-based engine loop would be a perf regression.
static_assert(InPlaceAnnealProblem<ScalableSaProblem>);

namespace {

/// Attempts of O(1) rejection sampling for "random video absent from this
/// server" before falling back to the exact O(M) scan.  Most videos are
/// absent from any given server (mean degree << N), so the fallback only
/// triggers when the server is nearly full — a state worth the scan.
constexpr std::size_t kAddReplicaRejectionAttempts = 32;

}  // namespace

ScalableSaProblem::ScalableSaProblem(const ScalableProblem& problem,
                                     const SaSolverOptions& options)
    : problem_(problem), options_(options) {
  problem_.validate();
  require(options_.bandwidth_penalty >= 0.0,
          "ScalableSaProblem: negative bandwidth penalty");
  require(options_.increase_rate_probability >= 0.0 &&
              options_.increase_rate_probability <= 1.0,
          "ScalableSaProblem: increase_rate_probability out of [0, 1]");
  require(options_.shrink_probability >= 0.0 &&
              options_.shrink_probability <= 1.0,
          "ScalableSaProblem: shrink_probability out of [0, 1]");
}

ScalableSolution ScalableSaProblem::initial(Rng& rng) const {
  (void)rng;  // the paper's initial solution is deterministic
  ScalableSolution solution = lowest_rate_round_robin(problem_);
  (void)repair(solution);  // shed bandwidth overflow where possible
  return solution;
}

double ScalableSaProblem::cost(const State& state) const {
  if (obs::metrics_enabled()) {
    full_evaluations_.fetch_add(1, std::memory_order_relaxed);
  }
  const ServerUsage usage = compute_usage(problem_, state);
  double overflow = 0.0;
  const double capacity = problem_.cluster.bandwidth_bps_per_server;
  for (double load : usage.bandwidth_bps) {
    if (load > capacity) overflow += (load - capacity) / capacity;
  }
  const double objective =
      objective_value(state.bitrates(problem_.ladder), state.replicas(),
                      usage.bandwidth_bps, problem_.cluster.num_servers,
                      problem_.weights);
  return -objective + options_.bandwidth_penalty * overflow;
}

double ScalableSaProblem::incremental_cost(const IncrementalState& inc) const {
  return -inc.objective() +
         options_.bandwidth_penalty * inc.relative_bandwidth_overflow();
}

bool ScalableSaProblem::repair_incremental(
    IncrementalState& inc, std::vector<std::size_t>& hosted) const {
  if (obs::metrics_enabled()) {
    repairs_.fetch_add(1, std::memory_order_relaxed);
  }
  const double storage_cap = problem_.cluster.storage_bytes_per_server;
  const double bandwidth_cap = problem_.cluster.bandwidth_bps_per_server;
  const std::size_t n = problem_.cluster.num_servers;
  // Iterate until every server fits; each action strictly reduces either a
  // ladder index or a replica count, so the loop terminates.  Unlike the
  // seed implementation this never rebuilds usage from scratch — the live
  // per-server vectors are consulted (O(N)) and updated by each action.
  for (;;) {
    const std::vector<double>& storage = inc.storage_bytes();
    const std::vector<double>& bandwidth = inc.bandwidth_bps();
    std::size_t worst = n;
    for (std::size_t s = 0; s < n; ++s) {
      if (storage[s] > storage_cap || bandwidth[s] > bandwidth_cap) {
        worst = s;
        break;
      }
    }
    if (worst == n) return true;

    // Prefer the cheapest quality loss: among videos on the server, try the
    // lowest-rate ones first — lower their rate a notch, or evict their
    // replica here if already at the ladder floor (never the last replica).
    hosted = inc.videos_on(worst);
    const std::vector<std::size_t>& bitrate_index =
        inc.solution().bitrate_index;
    // The comparator is a strict total order, so the sorted sequence (and
    // with it the shed order) does not depend on the reverse index's
    // swap-remove permutation.
    std::sort(hosted.begin(), hosted.end(),
              [&](std::size_t a, std::size_t b) {
                if (bitrate_index[a] != bitrate_index[b]) {
                  return bitrate_index[a] < bitrate_index[b];
                }
                return a > b;  // colder video first
              });
    bool acted = false;
    for (std::size_t video : hosted) {
      if (bitrate_index[video] > 0) {
        inc.set_bitrate(video, bitrate_index[video] - 1);
        acted = true;
        break;
      }
      if (inc.solution().placement[video].size() > 1) {
        inc.drop_replica(video, worst);
        acted = true;
        break;
      }
    }
    if (!acted) {
      // Everything on the server is at the floor rate with a single replica.
      // Storage overflow is then unfixable; bandwidth overflow is tolerated
      // (soft constraint, penalized in the cost).
      return std::all_of(storage.begin(), storage.end(),
                         [&](double b) { return b <= storage_cap; });
    }
  }
}

bool ScalableSaProblem::repair(State& state) const {
  IncrementalState inc(problem_, std::move(state));
  std::vector<std::size_t> hosted;
  const bool ok = repair_incremental(inc, hosted);
  state = inc.solution();
  return ok;
}

bool ScalableSaProblem::propose_move(IncrementalState& inc,
                                     std::vector<std::size_t>& candidates,
                                     Rng& rng) const {
  const std::size_t n = problem_.cluster.num_servers;
  const std::size_t m = problem_.videos.count();
  const auto server = static_cast<std::size_t>(rng.uniform_index(n));
  const ScalableSolution& solution = inc.solution();

  auto try_increase_rate = [&]() {
    candidates.clear();
    for (std::size_t v : inc.videos_on(server)) {
      if (solution.bitrate_index[v] + 1 < problem_.ladder.size()) {
        candidates.push_back(v);
      }
    }
    if (candidates.empty()) return false;
    const std::size_t pick = candidates[rng.uniform_index(candidates.size())];
    inc.set_bitrate(pick, solution.bitrate_index[pick] + 1);
    return true;
  };
  auto try_add_replica = [&]() {
    // Uniform draw over the videos absent from this server: rejection
    // sampling first (O(1) expected), exact scan as the rare fallback.
    for (std::size_t attempt = 0; attempt < kAddReplicaRejectionAttempts;
         ++attempt) {
      const auto v = static_cast<std::size_t>(rng.uniform_index(m));
      if (solution.placement[v].size() < n && !inc.is_hosted(v, server)) {
        inc.add_replica(v, server);
        return true;
      }
    }
    candidates.clear();
    for (std::size_t v = 0; v < m; ++v) {
      if (solution.placement[v].size() < n && !inc.is_hosted(v, server)) {
        candidates.push_back(v);
      }
    }
    if (candidates.empty()) return false;
    const std::size_t pick = candidates[rng.uniform_index(candidates.size())];
    inc.add_replica(pick, server);
    return true;
  };
  auto try_shrink = [&]() {
    // Lower a hosted video's rate, or drop its replica here (never the last
    // one).  Uphill in objective, but it frees storage so later growth
    // moves can re-pack — the escape hatch from the storage-full plateau.
    candidates.clear();
    for (std::size_t v : inc.videos_on(server)) {
      if (solution.bitrate_index[v] == 0 && solution.placement[v].size() <= 1) {
        continue;
      }
      candidates.push_back(v);
    }
    if (candidates.empty()) return false;
    const std::size_t pick = candidates[rng.uniform_index(candidates.size())];
    if (solution.bitrate_index[pick] > 0 &&
        (solution.placement[pick].size() <= 1 || rng.bernoulli(0.5))) {
      inc.set_bitrate(pick, solution.bitrate_index[pick] - 1);
    } else {
      inc.drop_replica(pick, server);
    }
    return true;
  };

  if (rng.bernoulli(options_.shrink_probability)) {
    return try_shrink();
  }
  if (rng.bernoulli(options_.increase_rate_probability)) {
    return try_increase_rate() || try_add_replica();
  }
  return try_add_replica() || try_increase_rate();
}

ScalableSolution ScalableSaProblem::neighbor(const State& state,
                                             Rng& rng) const {
  // Copy-based entry point (kept for the AnnealProblem concept, calibration,
  // and tests): runs the same move + repair as the in-place path against a
  // freshly built incremental state.
  IncrementalState inc(problem_, state);
  std::vector<std::size_t> candidates;
  if (!propose_move(inc, candidates, rng)) return state;  // saturated server
  if (!repair_incremental(inc, candidates)) return state;  // irreparable
  return inc.solution();
}

ScalableSaProblem::Scratch ScalableSaProblem::make_scratch(State state) const {
  return Scratch{IncrementalState(problem_, std::move(state)), 0, 0.0, {}};
}

bool ScalableSaProblem::propose(Scratch& scratch, Rng& rng) const {
  scratch.mark = scratch.state.checkpoint();
  scratch.cost_before = incremental_cost(scratch.state);
  if (!propose_move(scratch.state, scratch.candidates, rng)) return false;
  if (!repair_incremental(scratch.state, scratch.candidates)) {
    scratch.state.rollback(scratch.mark);
    return false;
  }
#if VODREP_CONTRACTS_ENABLED
  // A successful move+repair must leave every server within storage (Eq. 4);
  // bandwidth may overflow (soft constraint, penalized in the cost).
  for (double bytes : scratch.state.storage_bytes()) {
    VODREP_DCHECK_LE(bytes,
                     problem_.cluster.storage_bytes_per_server * (1.0 + 1e-9),
                     "propose: repair left a server over storage capacity");
  }
#endif
  return true;
}

double ScalableSaProblem::delta_cost(const Scratch& scratch) const {
  if (obs::metrics_enabled()) {
    delta_evaluations_.fetch_add(1, std::memory_order_relaxed);
  }
  return incremental_cost(scratch.state) - scratch.cost_before;
}

void ScalableSaProblem::commit(Scratch& scratch) const {
  scratch.state.commit();
}

void ScalableSaProblem::revert(Scratch& scratch) const {
  scratch.state.rollback(scratch.mark);
}

ScalableSolution ScalableSaProblem::extract(const Scratch& scratch) const {
  return scratch.state.solution();
}

ScalableSaProblem::EvalCounts ScalableSaProblem::eval_counts() const {
  return EvalCounts{full_evaluations_.load(std::memory_order_relaxed),
                    delta_evaluations_.load(std::memory_order_relaxed),
                    repairs_.load(std::memory_order_relaxed)};
}

SaSolverResult solve_scalable(const ScalableProblem& problem,
                              std::uint64_t seed,
                              const SaSolverOptions& options,
                              ThreadPool* pool) {
  require(options.chains >= 1, "solve_scalable: need at least one chain");
  VODREP_TRACE_SCOPE("sa.solve");
  const ScalableSaProblem sa_problem(problem, options);
  SaSolverResult result;
  if (options.chains == 1) {
    Rng rng(seed);
    result.anneal = anneal(sa_problem, rng, options.anneal);
  } else {
    result.anneal =
        anneal_multichain(sa_problem, seed, options.chains, options.anneal,
                          pool);
  }
  result.solution = result.anneal.best_state;
  result.objective = solution_objective(problem, result.solution);
  result.feasible = is_feasible(problem, result.solution);

  if (obs::metrics_enabled()) {
    // End-of-solve fold into the metrics registry: bulk adds of the engine's
    // own instrumentation, so the Metropolis hot loop itself never touches
    // the registry and the exported counters reconcile bit-exactly with the
    // returned AnnealResult (tests/obs_integration_test.cc).
    obs::MetricsRegistry& registry = obs::metrics();
    registry.counter("sa.solves").inc();
    registry.counter("sa.chains").add(options.chains);
    registry.counter("sa.moves_proposed").add(result.anneal.moves_proposed);
    registry.counter("sa.moves_accepted").add(result.anneal.moves_accepted);
    registry.counter("sa.moves_noop").add(result.anneal.moves_noop);
    registry.counter("sa.temperature_steps")
        .add(result.anneal.temperature_steps);
    const ScalableSaProblem::EvalCounts evals = sa_problem.eval_counts();
    registry.counter("sa.evaluations_full").add(evals.full_evaluations);
    registry.counter("sa.evaluations_delta").add(evals.delta_evaluations);
    registry.counter("sa.repairs").add(evals.repairs);
    registry.gauge("sa.best_objective").set(result.objective);
    registry.gauge("sa.final_temperature")
        .set(result.anneal.final_temperature);
  }
#if VODREP_CONTRACTS_ENABLED
  {
    const AuditReport report =
        LayoutAuditor::audit_solution(problem, result.solution);
    if (result.feasible) {
      VODREP_DCHECK(report.ok(), report.summary());
    } else {
      // Eq. 5 is the solver's soft constraint: when the offered load exceeds
      // the cluster's outgoing bandwidth no solution satisfies it and the
      // annealer returns the least-overflowing one; everything else
      // (structure, Eq. 4 storage) must still hold.
      VODREP_DCHECK(report.ok_ignoring(ViolationKind::kBandwidthOverflow),
                    report.summary());
    }
  }
#endif
  return result;
}

}  // namespace vodrep
