// Classification-based replication (the baseline the paper simulates,
// citing its companion work [19]).
//
// A "feasible and straightforward" scheme: the popularity-ranked video list
// is split into `num_classes` classes of (near-)equal cardinality; every
// video in class k (k = 1 holds the hottest videos) receives the same
// replica count, linear in the class rank: r(k) = clamp(round(s * (K-k+1)),
// 1, N).  The scale factor s is the largest value whose induced total fits
// the storage budget (found by bisection, since the total is non-decreasing
// in s).  Unlike the Adams scheme this ignores the actual popularity values
// inside a class, which is exactly the coarseness the paper's evaluation
// exposes.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/replication.h"

namespace vodrep {

class ClassificationReplication final : public ReplicationPolicy {
 public:
  /// `num_classes` == 0 uses one class per server (N classes).
  explicit ClassificationReplication(std::size_t num_classes = 0)
      : num_classes_(num_classes) {}

  [[nodiscard]] std::string name() const override { return "classification"; }
  [[nodiscard]] ReplicationPlan replicate(const std::vector<double>& popularity,
                                          std::size_t num_servers,
                                          std::size_t budget) const override;

  /// Class index (0-based, 0 = hottest) of each video for `num_videos`
  /// videos split into `num_classes` near-equal classes.
  [[nodiscard]] static std::vector<std::size_t> classify(
      std::size_t num_videos, std::size_t num_classes);

 private:
  std::size_t num_classes_;
};

}  // namespace vodrep
