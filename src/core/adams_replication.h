// Bounded Adams monotone divisor replication (paper Section 4.1.1).
//
// Optimal for the fixed-bit-rate replication objective of Eq. 8: minimize
// the largest per-replica communication weight max_i p_i / r_i, subject to
// the cluster-wide budget and the per-video cap r_i <= N (Eq. 7).
//
// The algorithm is the Adams divisor method from apportionment theory with
// the house size equal to the replica budget and the seat cap N: start from
// one replica per video, then repeatedly grant one more replica to the video
// whose replicas currently carry the greatest weight, skipping videos that
// already own N replicas.  A max-heap keyed by p_i / r_i gives
// O(M + (budget - M) log M) time — the O(M + N*C*log M) worst case cited in
// the paper.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/replication.h"

namespace vodrep {

/// One granting step of the Adams iteration, recorded for Figure-1-style
/// traces and for the optimality tests.
struct AdamsStep {
  std::size_t video = 0;        ///< video that received the new replica
  std::size_t new_replicas = 0; ///< its replica count after the grant
  double weight_before = 0.0;   ///< p_i / (new_replicas - 1), the max at pick time
  double weight_after = 0.0;    ///< p_i / new_replicas
};

class AdamsReplication final : public ReplicationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "adams"; }
  [[nodiscard]] ReplicationPlan replicate(const std::vector<double>& popularity,
                                          std::size_t num_servers,
                                          std::size_t budget) const override;

  /// Like replicate(), but also records every granting step in order.
  [[nodiscard]] ReplicationPlan replicate_traced(
      const std::vector<double>& popularity, std::size_t num_servers,
      std::size_t budget, std::vector<AdamsStep>* steps) const;
};

}  // namespace vodrep
