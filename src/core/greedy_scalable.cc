#include "src/core/greedy_scalable.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "src/audit/audit.h"
#include "src/util/check.h"
#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {
namespace {

enum class MoveKind { kRaiseRate, kAddReplica };

struct Move {
  double utility;  // objective gain per byte of storage
  MoveKind kind;
  std::size_t video;

  bool operator<(const Move& other) const {
    // Max-heap on utility; ties toward the hotter (smaller-id) video so the
    // allocation is deterministic.
    if (utility != other.utility) return utility < other.utility;
    return video > other.video;
  }
};

class GreedyState {
 public:
  explicit GreedyState(const ScalableProblem& problem)
      : problem_(problem), solution_(lowest_rate_round_robin(problem)) {
    const std::size_t n = problem.cluster.num_servers;
    storage_.assign(n, 0.0);
    load_.assign(n, 0.0);
    for (std::size_t video = 0; video < solution_.num_videos(); ++video) {
      for (std::size_t server : solution_.placement[video]) {
        storage_[server] += replica_bytes(video);
        load_[server] += replica_load(video);
      }
    }
  }

  [[nodiscard]] const ScalableSolution& solution() const { return solution_; }

  [[nodiscard]] double rate_of(std::size_t video) const {
    return problem_.ladder.rates_bps[solution_.bitrate_index[video]];
  }

  [[nodiscard]] double replica_bytes(std::size_t video) const {
    return units::video_bytes(problem_.videos.duration_sec, rate_of(video));
  }

  /// Expected outgoing bandwidth one replica of `video` carries (Eq. 5).
  [[nodiscard]] double replica_load(std::size_t video) const {
    return problem_.expected_peak_requests *
           problem_.videos.popularity[video] /
           static_cast<double>(solution_.placement[video].size()) *
           rate_of(video);
  }

  /// Gain-per-byte of raising `video` one ladder step, or a negative value
  /// when the move is impossible (ladder top, or some host lacks storage).
  [[nodiscard]] double rate_utility(std::size_t video) const {
    const std::size_t idx = solution_.bitrate_index[video];
    if (idx + 1 >= problem_.ladder.size()) return -1.0;
    const double delta_rate =
        problem_.ladder.rates_bps[idx + 1] - problem_.ladder.rates_bps[idx];
    const double delta_bytes_per_host =
        units::video_bytes(problem_.videos.duration_sec, delta_rate);
    for (std::size_t server : solution_.placement[video]) {
      if (storage_[server] + delta_bytes_per_host >
          problem_.cluster.storage_bytes_per_server) {
        return -1.0;
      }
    }
    const double gain = units::to_mbps(delta_rate) /
                        static_cast<double>(problem_.videos.count());
    const double cost = delta_bytes_per_host *
                        static_cast<double>(solution_.placement[video].size());
    return gain / cost;
  }

  /// Gain-per-byte of adding one replica of `video`, or negative when no
  /// feasible server exists or the video is fully replicated.
  [[nodiscard]] double add_utility(std::size_t video) const {
    if (best_server_for(video) == problem_.cluster.num_servers) return -1.0;
    const double gain =
        problem_.weights.alpha /
        static_cast<double>(problem_.videos.count() *
                            problem_.cluster.num_servers);
    return gain / replica_bytes(video);
  }

  /// Least bandwidth-loaded server with storage for a new replica of
  /// `video` that does not already host it; N when none.
  [[nodiscard]] std::size_t best_server_for(std::size_t video) const {
    const auto& hosts = solution_.placement[video];
    if (hosts.size() >= problem_.cluster.num_servers) {
      return problem_.cluster.num_servers;
    }
    const double bytes = replica_bytes(video);
    std::size_t best = problem_.cluster.num_servers;
    double best_load = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s < problem_.cluster.num_servers; ++s) {
      if (storage_[s] + bytes > problem_.cluster.storage_bytes_per_server) {
        continue;
      }
      if (std::find(hosts.begin(), hosts.end(), s) != hosts.end()) continue;
      if (load_[s] < best_load) {
        best_load = load_[s];
        best = s;
      }
    }
    return best;
  }

  void apply_raise(std::size_t video) {
    const double old_bytes = replica_bytes(video);
    const double old_load = replica_load(video);
    ++solution_.bitrate_index[video];
    const double delta_bytes = replica_bytes(video) - old_bytes;
    const double delta_load = replica_load(video) - old_load;
    for (std::size_t server : solution_.placement[video]) {
      storage_[server] += delta_bytes;
      load_[server] += delta_load;
    }
  }

  void apply_add(std::size_t video, std::size_t server) {
    // Existing hosts shed load (their request share shrinks to 1/(r+1)).
    const double old_load = replica_load(video);
    solution_.placement[video].push_back(server);
    const double new_load = replica_load(video);
    for (std::size_t host : solution_.placement[video]) {
      if (host != server) load_[host] += new_load - old_load;
    }
    storage_[server] += replica_bytes(video);
    load_[server] += new_load;
  }

 private:
  const ScalableProblem& problem_;
  ScalableSolution solution_;
  std::vector<double> storage_;  ///< bytes used per server
  std::vector<double> load_;     ///< expected outgoing b/s per server
};

}  // namespace

ScalableSolution greedy_scalable(const ScalableProblem& problem) {
  problem.validate();
  GreedyState state(problem);

  // Lazy priority queue: utilities are re-checked at pop time because every
  // applied move can invalidate earlier estimates (storage fills, rates and
  // replica counts change the costs).
  std::priority_queue<Move> queue;
  for (std::size_t video = 0; video < problem.videos.count(); ++video) {
    const double raise = state.rate_utility(video);
    if (raise > 0.0) queue.push(Move{raise, MoveKind::kRaiseRate, video});
    const double add = state.add_utility(video);
    if (add > 0.0) queue.push(Move{add, MoveKind::kAddReplica, video});
  }

  while (!queue.empty()) {
    const Move move = queue.top();
    queue.pop();
    const double current = move.kind == MoveKind::kRaiseRate
                               ? state.rate_utility(move.video)
                               : state.add_utility(move.video);
    if (current <= 0.0) continue;  // became infeasible
    if (current < move.utility * (1.0 - 1e-12)) {
      // Stale estimate: reinsert with the refreshed utility.
      queue.push(Move{current, move.kind, move.video});
      continue;
    }
    if (move.kind == MoveKind::kRaiseRate) {
      state.apply_raise(move.video);
    } else {
      state.apply_add(move.video, state.best_server_for(move.video));
    }
    // The applied move may re-enable the other move kind for this video.
    const double raise = state.rate_utility(move.video);
    if (raise > 0.0) queue.push(Move{raise, MoveKind::kRaiseRate, move.video});
    const double add = state.add_utility(move.video);
    if (add > 0.0) queue.push(Move{add, MoveKind::kAddReplica, move.video});
  }
#if VODREP_CONTRACTS_ENABLED
  {
    // Structure (Eqs. 6/7) and storage (Eq. 4) are hard: every upgrade is
    // storage-checked before it applies.  Bandwidth (Eq. 5) is best-effort —
    // replicas go to the least-loaded feasible server but no cap is
    // enforced, so an overloaded catalogue legitimately overflows it.
    const AuditReport report =
        LayoutAuditor::audit_solution(problem, state.solution());
    VODREP_DCHECK(report.ok_ignoring(ViolationKind::kBandwidthOverflow),
                  report.summary());
  }
#endif
  return state.solution();
}

}  // namespace vodrep
