#include "src/core/placement.h"

#include <algorithm>
#include <numeric>

#include "src/util/error.h"
#include "src/workload/popularity.h"

namespace vodrep {

void check_placement_inputs(const ReplicationPlan& plan,
                            const std::vector<double>& popularity,
                            std::size_t num_servers,
                            std::size_t capacity_per_server) {
  require(num_servers >= 1, "placement: need at least one server");
  require(plan.replicas.size() == popularity.size(),
          "placement: plan/popularity size mismatch");
  require(is_popularity_vector(popularity),
          "placement: popularity must be normalized and non-increasing");
  for (std::size_t r : plan.replicas) {
    require(r >= 1, "placement: every video needs at least one replica");
    require(r <= num_servers, "placement: r_i exceeds server count (Eq. 7)");
  }
  if (plan.total_replicas() > num_servers * capacity_per_server) {
    throw InfeasibleError("placement: plan does not fit cluster storage");
  }
}

std::vector<std::size_t> videos_by_weight(
    const ReplicationPlan& plan, const std::vector<double>& popularity) {
  const std::vector<double> w = plan.weights(popularity);
  std::vector<std::size_t> order(plan.replicas.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return w[a] > w[b]; });
  return order;
}

}  // namespace vodrep
