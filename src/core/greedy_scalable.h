// Greedy marginal-utility allocator for the scalable-bit-rate problem —
// the deterministic comparator for the paper's simulated-annealing solver.
//
// Starting from the paper's initial solution (every video at the floor
// rate, one replica, round-robin), repeatedly apply the feasible upgrade
// with the best objective gain per byte of storage:
//   * raise one video's encoding rate a ladder step (costs Δrate * T bytes
//     on every host, gains Δrate/M of mean quality), or
//   * add one replica of a video (costs rate * T bytes on one server,
//     gains alpha/(M*N) of the normalized replication term);
// new replicas land on the least bandwidth-utilized feasible server, so the
// load-imbalance term is handled constructively rather than through the
// gain formula.  Stops when no upgrade fits.  O(M (K + N) log(M) + A*M)
// with lazy-revalidated priority queue; fully deterministic.
//
// SA explores non-greedy trade-downs (lowering one video to afford
// another), so it can beat this allocator; the vodrep_sa_scalable harness
// reports both so the gap is visible.
#pragma once

#include "src/core/scalable.h"

namespace vodrep {

/// Returns a feasible (storage-hard, bandwidth-best-effort) solution.
/// Throws InfeasibleError when even the initial solution does not fit.
[[nodiscard]] ScalableSolution greedy_scalable(const ScalableProblem& problem);

}  // namespace vodrep
