#include "src/core/uniform_replication.h"

#include <algorithm>

namespace vodrep {

ReplicationPlan UniformReplication::replicate(
    const std::vector<double>& popularity, std::size_t num_servers,
    std::size_t budget) const {
  check_replication_inputs(popularity, num_servers, budget);
  const std::size_t m = popularity.size();
  const std::size_t base = std::min(budget / m, num_servers);
  ReplicationPlan plan;
  plan.replicas.assign(m, std::max<std::size_t>(base, 1));
  if (base >= num_servers) return plan;  // full replication; no leftovers
  std::size_t leftover = budget - base * m;
  for (std::size_t i = 0; i < m && leftover > 0; ++i) {
    ++plan.replicas[i];
    --leftover;
  }
  return plan;
}

}  // namespace vodrep
