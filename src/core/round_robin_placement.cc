#include "src/core/round_robin_placement.h"

#include "src/audit/audit.h"
#include "src/util/check.h"

namespace vodrep {

Layout RoundRobinPlacement::place(const ReplicationPlan& plan,
                                  const std::vector<double>& popularity,
                                  std::size_t num_servers,
                                  std::size_t capacity_per_server) const {
  check_placement_inputs(plan, popularity, num_servers, capacity_per_server);
  Layout layout;
  layout.assignment.resize(plan.replicas.size());
  std::size_t cursor = 0;
  for (std::size_t video = 0; video < plan.replicas.size(); ++video) {
    layout.assignment[video].reserve(plan.replicas[video]);
    for (std::size_t k = 0; k < plan.replicas[video]; ++k) {
      layout.assignment[video].push_back(cursor % num_servers);
      ++cursor;
    }
  }
#if VODREP_CONTRACTS_ENABLED
  {
    LayoutAuditor::Limits limits;
    limits.num_servers = num_servers;
    limits.capacity_per_server = capacity_per_server;
    const AuditReport report =
        LayoutAuditor(limits).audit(layout, &plan, &popularity);
    VODREP_DCHECK(report.ok(), report.summary());
  }
#endif
  return layout;
}

}  // namespace vodrep
