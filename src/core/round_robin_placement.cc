#include "src/core/round_robin_placement.h"

namespace vodrep {

Layout RoundRobinPlacement::place(const ReplicationPlan& plan,
                                  const std::vector<double>& popularity,
                                  std::size_t num_servers,
                                  std::size_t capacity_per_server) const {
  check_placement_inputs(plan, popularity, num_servers, capacity_per_server);
  Layout layout;
  layout.assignment.resize(plan.replicas.size());
  std::size_t cursor = 0;
  for (std::size_t video = 0; video < plan.replicas.size(); ++video) {
    layout.assignment[video].reserve(plan.replicas[video]);
    for (std::size_t k = 0; k < plan.replicas[video]; ++k) {
      layout.assignment[video].push_back(cursor % num_servers);
      ++cursor;
    }
  }
  return layout;
}

}  // namespace vodrep
