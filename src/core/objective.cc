#include "src/core/objective.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {
namespace {

double mean_load(const std::vector<double>& loads) {
  require(!loads.empty(), "imbalance: empty load vector");
  double sum = 0.0;
  for (double l : loads) {
    require(l >= 0.0, "imbalance: negative load");
    sum += l;
  }
  return sum / static_cast<double>(loads.size());
}

}  // namespace

double imbalance_max_relative(const std::vector<double>& loads) {
  const double mean = mean_load(loads);
  if (mean == 0.0) return 0.0;
  const double max = *std::max_element(loads.begin(), loads.end());
  // Clamp: with equal loads the summed mean can exceed the max by a few
  // ulps, which would yield a (meaningless) negative imbalance.
  return std::max(0.0, (max - mean) / mean);
}

double imbalance_cv(const std::vector<double>& loads) {
  const double mean = mean_load(loads);
  if (mean == 0.0) return 0.0;
  double m2 = 0.0;
  for (double l : loads) m2 += (l - mean) * (l - mean);
  return std::sqrt(m2 / static_cast<double>(loads.size())) / mean;
}

double load_spread(const std::vector<double>& loads) {
  require(!loads.empty(), "load_spread: empty load vector");
  const auto [min_it, max_it] = std::minmax_element(loads.begin(), loads.end());
  return *max_it - *min_it;
}

double imbalance(const std::vector<double>& loads,
                 ImbalanceDefinition definition) {
  switch (definition) {
    case ImbalanceDefinition::kMaxRelative:
      return imbalance_max_relative(loads);
    case ImbalanceDefinition::kCoefficientOfVariation:
      return imbalance_cv(loads);
  }
  detail::throw_invalid("imbalance: unknown definition");
}

double objective_value(const std::vector<double>& bitrates_bps,
                       const std::vector<std::size_t>& replicas,
                       const std::vector<double>& loads,
                       std::size_t num_servers,
                       const ObjectiveWeights& weights) {
  return objective_value(bitrates_bps, replicas, /*prefix_fraction=*/{}, loads,
                         num_servers, weights);
}

double objective_value(const std::vector<double>& bitrates_bps,
                       const std::vector<std::size_t>& replicas,
                       const std::vector<double>& prefix_fraction,
                       const std::vector<double>& loads,
                       std::size_t num_servers,
                       const ObjectiveWeights& weights) {
  require(!bitrates_bps.empty(), "objective: empty bit-rate vector");
  require(bitrates_bps.size() == replicas.size(),
          "objective: bit-rate/replica size mismatch");
  require(prefix_fraction.empty() ||
              prefix_fraction.size() == replicas.size(),
          "objective: prefix-fraction size mismatch");
  require(num_servers >= 1, "objective: need at least one server");
  const auto m = static_cast<double>(bitrates_bps.size());
  double rate_sum = 0.0;
  double replica_sum = 0.0;
  for (std::size_t i = 0; i < bitrates_bps.size(); ++i) {
    require(bitrates_bps[i] > 0.0, "objective: bit rates must be positive");
    require(replicas[i] >= 1, "objective: r_i must be >= 1");
    rate_sum += units::to_mbps(bitrates_bps[i]);
    if (prefix_fraction.empty()) {
      replica_sum += static_cast<double>(replicas[i]);
    } else {
      require(prefix_fraction[i] > 0.0 && prefix_fraction[i] <= 1.0,
              "objective: prefix fraction must be in (0, 1]");
      replica_sum += static_cast<double>(replicas[i]) * prefix_fraction[i];
    }
  }
  const double mean_rate_mbps = rate_sum / m;
  const double mean_degree_normalized =
      replica_sum / m / static_cast<double>(num_servers);
  const double l = imbalance(loads, weights.imbalance_definition);
  return mean_rate_mbps + weights.alpha * mean_degree_normalized -
         weights.beta * l;
}

}  // namespace vodrep
