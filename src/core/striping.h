// Data striping: the alternative storage organization the paper argues
// against (Section 1 and its citation of "Striping doesn't scale").
//
// Under striping a video's blocks are spread over a *stripe group* of k
// servers and every stream of that video draws bitrate/k from each group
// member's outgoing link concurrently.  Wide striping (k = N) pools the
// whole cluster into one virtual link — perfect load balance — but couples
// every video to every server: one server failure interrupts every stream
// and makes every video striped over it unavailable.  Replication isolates
// failures at the cost of balancing explicitly.  The vodrep_striping
// benchmark reproduces this trade-off quantitatively.
#pragma once

#include <cstddef>
#include <vector>

namespace vodrep {

/// Assignment of every video to an ordered stripe group of distinct servers.
struct StripedLayout {
  /// groups[i] = the servers video i is striped over (size k_i >= 1).
  std::vector<std::vector<std::size_t>> groups;

  [[nodiscard]] std::size_t num_videos() const { return groups.size(); }

  /// Number of videos striped over each of `num_servers` servers.
  [[nodiscard]] std::vector<std::size_t> videos_per_server(
      std::size_t num_servers) const;

  /// Throws InvalidArgumentError unless every group is non-empty with
  /// distinct in-range members of size exactly `stripe_width` (or <= N).
  void validate(std::size_t num_servers) const;
};

/// Builds a striped layout with stripe width `k`: video i occupies servers
/// (i*k .. i*k + k - 1) mod N wrapped round-robin, the standard staggered
/// layout that equalizes the number of stripes per server.  Requires
/// 1 <= k <= num_servers.
[[nodiscard]] StripedLayout make_striped_layout(std::size_t num_videos,
                                                std::size_t num_servers,
                                                std::size_t stripe_width);

/// Storage occupied on each server by a striped layout: a video of
/// `video_bytes` striped over k servers stores video_bytes / k per member.
[[nodiscard]] std::vector<double> striped_storage_per_server(
    const StripedLayout& layout, std::size_t num_servers, double video_bytes);

/// Probability that a uniformly random video is fully available when each
/// server independently survives with probability `server_survival`:
/// availability of a k-striped video is survival^k, of an r-replicated
/// video is 1 - (1 - survival)^r.  These closed forms back the reliability
/// comparison in the striping benchmark.
[[nodiscard]] double striped_video_availability(double server_survival,
                                                std::size_t stripe_width);
[[nodiscard]] double replicated_video_availability(double server_survival,
                                                   std::size_t replicas);

/// Hybrid organization (the paper's "data striping and recovery schemes can
/// be employed within the servers"): r replicas of k-wide stripe groups.
/// A video is available when at least one group is fully alive:
/// 1 - (1 - p^k)^r.  k = 1 degenerates to replication, r = 1 to striping.
[[nodiscard]] double hybrid_video_availability(double server_survival,
                                               std::size_t stripe_width,
                                               std::size_t group_replicas);

/// Hybrid layout: every video owns `group_replicas` pairwise-disjoint
/// stripe groups of `stripe_width` distinct servers each; streams are
/// dispatched round-robin across a video's groups.
struct HybridLayout {
  /// groups[video][replica] = the servers of that stripe-group copy.
  std::vector<std::vector<std::vector<std::size_t>>> groups;

  [[nodiscard]] std::size_t num_videos() const { return groups.size(); }

  /// Throws InvalidArgumentError unless every video has >= 1 group, groups
  /// have distinct in-range members, and a video's groups are pairwise
  /// disjoint (a shared server would couple the copies' failures).
  void validate(std::size_t num_servers) const;
};

/// Builds a staggered hybrid layout.  Requires
/// stripe_width * group_replicas <= num_servers so a video's copies can be
/// disjoint.
[[nodiscard]] HybridLayout make_hybrid_layout(std::size_t num_videos,
                                              std::size_t num_servers,
                                              std::size_t stripe_width,
                                              std::size_t group_replicas);

}  // namespace vodrep
