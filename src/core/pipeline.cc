#include "src/core/pipeline.h"

#include "src/core/adams_replication.h"
#include "src/core/best_fit_placement.h"
#include "src/core/bounds.h"
#include "src/core/classification_replication.h"
#include "src/core/round_robin_placement.h"
#include "src/core/slf_placement.h"
#include "src/core/uniform_replication.h"
#include "src/core/zipf_interval_replication.h"
#include "src/util/error.h"

namespace vodrep {

ProvisioningResult provision(const FixedRateProblem& problem,
                             const ReplicationPolicy& replication,
                             const PlacementPolicy& placement,
                             std::size_t budget_override) {
  problem.validate();
  const std::size_t budget = budget_override > 0
                                 ? budget_override
                                 : problem.total_replica_capacity();
  require(budget <= problem.total_replica_capacity(),
          "provision: budget override exceeds cluster storage");

  ProvisioningResult result;
  result.plan = replication.replicate(problem.videos.popularity,
                                      problem.cluster.num_servers, budget);
  result.plan.validate(problem.cluster.num_servers, budget);
  result.layout =
      placement.place(result.plan, problem.videos.popularity,
                      problem.cluster.num_servers,
                      problem.replica_capacity_per_server());
  result.layout.validate(result.plan, problem.cluster.num_servers,
                         problem.replica_capacity_per_server());
  result.expected_loads = result.layout.expected_loads(
      problem.videos.popularity, problem.cluster.num_servers);
  result.max_weight = result.plan.max_weight(problem.videos.popularity);
  result.spread_bound = slf_spread_bound(result.plan, problem.videos.popularity);
  return result;
}

std::unique_ptr<ReplicationPolicy> make_replication_policy(
    const std::string& name) {
  if (name == "adams") return std::make_unique<AdamsReplication>();
  if (name == "zipf") return std::make_unique<ZipfIntervalReplication>();
  if (name == "classification") {
    return std::make_unique<ClassificationReplication>();
  }
  if (name == "uniform") return std::make_unique<UniformReplication>();
  detail::throw_invalid("unknown replication policy: " + name);
}

std::unique_ptr<PlacementPolicy> make_placement_policy(const std::string& name) {
  if (name == "slf") return std::make_unique<SmallestLoadFirstPlacement>();
  if (name == "round-robin") return std::make_unique<RoundRobinPlacement>();
  if (name == "best-fit") return std::make_unique<BestFitPlacement>();
  detail::throw_invalid("unknown placement policy: " + name);
}

}  // namespace vodrep
