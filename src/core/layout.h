// Layout: the concrete assignment of every replica to a server.
//
// layout.assignment[i] is the list of distinct servers hosting a replica of
// video i (the paper's phi_i(k) mapping).  The layout, together with the
// per-replica communication weights w_i = p_i / r_i, determines the expected
// outgoing load l_j of every server (Eq. 5) and hence the load-imbalance
// degree the placement algorithms minimize.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/replication.h"

namespace vodrep {

struct Layout {
  /// assignment[i] = servers hosting video i; distinct, each < num_servers.
  std::vector<std::vector<std::size_t>> assignment;

  [[nodiscard]] std::size_t num_videos() const { return assignment.size(); }

  /// Number of replicas stored on each of `num_servers` servers.
  [[nodiscard]] std::vector<std::size_t> replicas_per_server(
      std::size_t num_servers) const;

  /// Fractional storage per server in replica-slot units under the prefix
  /// content model: sum of prefix_fraction[i] over the replicas each server
  /// hosts (Eq. 4 with prefix assets).  `prefix_fraction` must hold one
  /// fraction in (0, 1] per video; with all fractions at 1.0 this equals
  /// replicas_per_server exactly.
  [[nodiscard]] std::vector<double> fractional_replicas_per_server(
      const std::vector<double>& prefix_fraction,
      std::size_t num_servers) const;

  /// Expected outgoing load of each server: l_j = sum of w_i over replicas
  /// hosted by j, with w_i = popularity[i] / r_i.  `popularity` must match
  /// the layout's video count.
  [[nodiscard]] std::vector<double> expected_loads(
      const std::vector<double>& popularity, std::size_t num_servers) const;

  /// The replication plan implied by this layout (r_i = replica count).
  [[nodiscard]] ReplicationPlan implied_plan() const;

  /// Throws InvalidArgumentError unless the layout realizes `plan` on
  /// `num_servers` servers within `capacity_per_server` replica slots.
  /// Delegates to the constraint auditor (src/audit): matching replica
  /// counts, distinct in-range servers per video (Eq. 6), 1 <= r_i <= N
  /// (Eq. 7), and no server over its storage capacity (Eq. 4).
  void validate(const ReplicationPlan& plan, std::size_t num_servers,
                std::size_t capacity_per_server) const;

  /// As above, and additionally checks the Eq. 5 bandwidth constraint:
  /// every server's expected outgoing load — its share of `popularity`
  /// scaled by `expected_peak_requests` requests at `bitrate_bps` each —
  /// must fit within `bandwidth_bps_per_server`.
  void validate(const ReplicationPlan& plan, std::size_t num_servers,
                std::size_t capacity_per_server,
                const std::vector<double>& popularity,
                double bandwidth_bps_per_server,
                double expected_peak_requests, double bitrate_bps) const;
};

}  // namespace vodrep
