#include "src/core/striping.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace vodrep {

std::vector<std::size_t> StripedLayout::videos_per_server(
    std::size_t num_servers) const {
  std::vector<std::size_t> counts(num_servers, 0);
  for (const auto& group : groups) {
    for (std::size_t s : group) {
      require(s < num_servers, "StripedLayout: server index out of range");
      ++counts[s];
    }
  }
  return counts;
}

void StripedLayout::validate(std::size_t num_servers) const {
  for (const auto& group : groups) {
    require(!group.empty(), "StripedLayout: empty stripe group");
    require(group.size() <= num_servers,
            "StripedLayout: stripe wider than the cluster");
    std::vector<std::size_t> sorted = group;
    std::sort(sorted.begin(), sorted.end());
    require(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
            "StripedLayout: duplicate server in a stripe group");
    require(sorted.back() < num_servers,
            "StripedLayout: server index out of range");
  }
}

StripedLayout make_striped_layout(std::size_t num_videos,
                                  std::size_t num_servers,
                                  std::size_t stripe_width) {
  require(num_servers >= 1, "make_striped_layout: need a server");
  require(stripe_width >= 1 && stripe_width <= num_servers,
          "make_striped_layout: stripe width must be in [1, N]");
  StripedLayout layout;
  layout.groups.resize(num_videos);
  for (std::size_t i = 0; i < num_videos; ++i) {
    layout.groups[i].reserve(stripe_width);
    // Staggered start so stripe load spreads evenly across servers even
    // when stripe_width does not divide N.
    const std::size_t start = (i * stripe_width) % num_servers;
    for (std::size_t j = 0; j < stripe_width; ++j) {
      layout.groups[i].push_back((start + j) % num_servers);
    }
  }
  return layout;
}

std::vector<double> striped_storage_per_server(const StripedLayout& layout,
                                               std::size_t num_servers,
                                               double video_bytes) {
  require(video_bytes >= 0.0, "striped_storage_per_server: negative size");
  std::vector<double> storage(num_servers, 0.0);
  for (const auto& group : layout.groups) {
    require(!group.empty(), "striped_storage_per_server: empty group");
    const double share = video_bytes / static_cast<double>(group.size());
    for (std::size_t s : group) {
      require(s < num_servers, "striped_storage_per_server: out of range");
      storage[s] += share;
    }
  }
  return storage;
}

double striped_video_availability(double server_survival,
                                  std::size_t stripe_width) {
  require(server_survival >= 0.0 && server_survival <= 1.0,
          "striped_video_availability: survival must be a probability");
  require(stripe_width >= 1, "striped_video_availability: bad stripe width");
  return std::pow(server_survival, static_cast<double>(stripe_width));
}

double replicated_video_availability(double server_survival,
                                     std::size_t replicas) {
  require(server_survival >= 0.0 && server_survival <= 1.0,
          "replicated_video_availability: survival must be a probability");
  require(replicas >= 1, "replicated_video_availability: bad replica count");
  return 1.0 -
         std::pow(1.0 - server_survival, static_cast<double>(replicas));
}

double hybrid_video_availability(double server_survival,
                                 std::size_t stripe_width,
                                 std::size_t group_replicas) {
  require(group_replicas >= 1, "hybrid_video_availability: bad replica count");
  const double group_alive =
      striped_video_availability(server_survival, stripe_width);
  return 1.0 - std::pow(1.0 - group_alive,
                        static_cast<double>(group_replicas));
}

void HybridLayout::validate(std::size_t num_servers) const {
  for (const auto& video_groups : groups) {
    require(!video_groups.empty(), "HybridLayout: video has no group");
    std::vector<std::size_t> all_members;
    for (const auto& group : video_groups) {
      require(!group.empty(), "HybridLayout: empty stripe group");
      for (std::size_t server : group) {
        require(server < num_servers,
                "HybridLayout: server index out of range");
        all_members.push_back(server);
      }
    }
    std::sort(all_members.begin(), all_members.end());
    require(std::adjacent_find(all_members.begin(), all_members.end()) ==
                all_members.end(),
            "HybridLayout: a video's groups share a server");
  }
}

HybridLayout make_hybrid_layout(std::size_t num_videos,
                                std::size_t num_servers,
                                std::size_t stripe_width,
                                std::size_t group_replicas) {
  require(num_servers >= 1, "make_hybrid_layout: need a server");
  require(stripe_width >= 1 && group_replicas >= 1,
          "make_hybrid_layout: bad dimensions");
  require(stripe_width * group_replicas <= num_servers,
          "make_hybrid_layout: disjoint copies need k*r <= N");
  HybridLayout layout;
  layout.groups.resize(num_videos);
  const std::size_t footprint = stripe_width * group_replicas;
  for (std::size_t video = 0; video < num_videos; ++video) {
    // Stagger the whole k*r footprint per video, then carve it into r
    // contiguous disjoint groups.
    const std::size_t start = (video * footprint) % num_servers;
    layout.groups[video].resize(group_replicas);
    for (std::size_t r = 0; r < group_replicas; ++r) {
      auto& group = layout.groups[video][r];
      group.reserve(stripe_width);
      for (std::size_t j = 0; j < stripe_width; ++j) {
        group.push_back((start + r * stripe_width + j) % num_servers);
      }
    }
  }
  return layout;
}

}  // namespace vodrep
