#include "src/core/scalable.h"

#include <algorithm>

#include "src/util/error.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"

namespace vodrep {

double BitrateLadder::lowest() const {
  require(!rates_bps.empty(), "BitrateLadder: empty ladder");
  return rates_bps.front();
}

double BitrateLadder::highest() const {
  require(!rates_bps.empty(), "BitrateLadder: empty ladder");
  return rates_bps.back();
}

void BitrateLadder::validate() const {
  require(!rates_bps.empty(), "BitrateLadder: empty ladder");
  double prev = 0.0;
  for (double r : rates_bps) {
    require(r > prev, "BitrateLadder: rates must be positive and ascending");
    prev = r;
  }
}

void ScalableProblem::validate() const {
  require(cluster.num_servers >= 1, "ScalableProblem: need a server");
  require(videos.count() >= 1, "ScalableProblem: need a video");
  require(videos.duration_sec > 0.0, "ScalableProblem: bad duration");
  require(is_popularity_vector(videos.popularity),
          "ScalableProblem: invalid popularity vector");
  ladder.validate();
  require(expected_peak_requests >= 0.0,
          "ScalableProblem: negative peak request volume");
  require(min_prefix_fraction > 0.0 && min_prefix_fraction <= 1.0,
          "ScalableProblem: min prefix fraction must be in (0, 1]");
}

std::vector<std::size_t> ScalableSolution::replicas() const {
  std::vector<std::size_t> r;
  r.reserve(placement.size());
  for (const auto& servers : placement) r.push_back(servers.size());
  return r;
}

std::vector<double> ScalableSolution::bitrates(
    const BitrateLadder& ladder) const {
  std::vector<double> rates;
  rates.reserve(bitrate_index.size());
  for (std::size_t idx : bitrate_index) {
    require(idx < ladder.size(), "ScalableSolution: ladder index out of range");
    rates.push_back(ladder.rates_bps[idx]);
  }
  return rates;
}

ServerUsage compute_usage(const ScalableProblem& problem,
                          const ScalableSolution& solution) {
  const std::size_t n = problem.cluster.num_servers;
  require(solution.bitrate_index.size() == problem.videos.count() &&
              solution.placement.size() == problem.videos.count(),
          "compute_usage: solution/problem size mismatch");
  require(solution.prefix_fraction.empty() ||
              solution.prefix_fraction.size() == problem.videos.count(),
          "compute_usage: prefix-fraction size mismatch");
  ServerUsage usage;
  usage.storage_bytes.assign(n, 0.0);
  usage.bandwidth_bps.assign(n, 0.0);
  for (std::size_t i = 0; i < solution.placement.size(); ++i) {
    const auto& servers = solution.placement[i];
    if (servers.empty()) continue;
    const double rate = problem.ladder.rates_bps[solution.bitrate_index[i]];
    const double bytes = units::video_bytes(problem.videos.duration_sec, rate);
    const double per_replica_requests =
        problem.expected_peak_requests * problem.videos.popularity[i] /
        static_cast<double>(servers.size());
    // A replica stores and serves only the f_i prefix; f_i == 1.0 multiplies
    // the whole-file terms by exactly 1 (IEEE), keeping the pre-asset
    // accounting bit-identical.
    const double fraction = solution.fraction_of(i);
    for (std::size_t s : servers) {
      require(s < n, "compute_usage: server index out of range");
      usage.storage_bytes[s] += fraction * bytes;
      usage.bandwidth_bps[s] += fraction * (per_replica_requests * rate);
    }
  }
  return usage;
}

bool is_feasible(const ScalableProblem& problem,
                 const ScalableSolution& solution) {
  const std::size_t n = problem.cluster.num_servers;
  for (const auto& servers : solution.placement) {
    if (servers.empty() || servers.size() > n) return false;
    std::vector<std::size_t> sorted = servers;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return false;
    }
    if (sorted.back() >= n) return false;
  }
  if (!solution.prefix_fraction.empty()) {
    if (solution.prefix_fraction.size() != solution.placement.size()) {
      return false;
    }
    for (double f : solution.prefix_fraction) {
      if (!(f >= problem.min_prefix_fraction && f <= 1.0)) return false;
    }
  }
  const ServerUsage usage = compute_usage(problem, solution);
  // A hair of tolerance absorbs float accumulation; the constraints are on
  // physically continuous quantities.
  constexpr double kSlack = 1.0 + 1e-9;
  for (std::size_t s = 0; s < n; ++s) {
    if (usage.storage_bytes[s] >
        problem.cluster.storage_bytes_per_server * kSlack) {
      return false;
    }
    if (usage.bandwidth_bps[s] >
        problem.cluster.bandwidth_bps_per_server * kSlack) {
      return false;
    }
  }
  return true;
}

double solution_objective(const ScalableProblem& problem,
                          const ScalableSolution& solution) {
  const ServerUsage usage = compute_usage(problem, solution);
  return objective_value(solution.bitrates(problem.ladder),
                         solution.replicas(), solution.prefix_fraction,
                         usage.bandwidth_bps, problem.cluster.num_servers,
                         problem.weights);
}

ScalableSolution lowest_rate_round_robin(const ScalableProblem& problem) {
  problem.validate();
  ScalableSolution solution;
  const std::size_t m = problem.videos.count();
  solution.bitrate_index.assign(m, 0);
  solution.placement.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    solution.placement[i].push_back(i % problem.cluster.num_servers);
  }
  const ServerUsage usage = compute_usage(problem, solution);
  for (double bytes : usage.storage_bytes) {
    if (bytes > problem.cluster.storage_bytes_per_server) {
      throw InfeasibleError(
          "lowest_rate_round_robin: cluster storage cannot hold one "
          "lowest-rate replica of every video");
    }
  }
  return solution;
}

}  // namespace vodrep
