// Facade: run a replication policy and a placement policy against a
// fixed-rate problem and return the validated result.  This is the
// entry point the examples and the experiment harness use.
#pragma once

#include <memory>
#include <string>

#include "src/core/layout.h"
#include "src/core/model.h"
#include "src/core/placement.h"
#include "src/core/replication.h"

namespace vodrep {

/// The combined output of replication + placement for one problem instance.
struct ProvisioningResult {
  ReplicationPlan plan;
  Layout layout;
  std::vector<double> expected_loads;  ///< normalized weights, per server
  double max_weight = 0.0;             ///< Eq. 8 objective value
  double spread_bound = 0.0;           ///< Theorem 4.2 bound on load spread
};

/// Runs `replication` with the budget implied by the problem's storage
/// (total_replica_capacity, optionally overridden by `budget_override` > 0),
/// places the plan with `placement`, validates the layout against the plan
/// and the cluster, and computes the expected loads.
[[nodiscard]] ProvisioningResult provision(
    const FixedRateProblem& problem, const ReplicationPolicy& replication,
    const PlacementPolicy& placement, std::size_t budget_override = 0);

/// Factory by name: "adams", "zipf", "classification", "uniform".
/// Throws InvalidArgumentError for unknown names.
[[nodiscard]] std::unique_ptr<ReplicationPolicy> make_replication_policy(
    const std::string& name);

/// Factory by name: "slf", "round-robin", "best-fit".
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_placement_policy(
    const std::string& name);

}  // namespace vodrep
