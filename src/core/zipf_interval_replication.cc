#include "src/core/zipf_interval_replication.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace vodrep {
namespace {

std::size_t total_of(const std::vector<std::size_t>& replicas) {
  std::size_t total = 0;
  for (std::size_t r : replicas) total += r;
  return total;
}

}  // namespace

std::vector<double> ZipfIntervalReplication::interval_boundaries(
    double top_popularity, std::size_t num_servers, double u) {
  require(top_popularity > 0.0,
          "interval_boundaries: top popularity must be positive");
  require(num_servers >= 1, "interval_boundaries: need at least one server");
  // Interval k in {1..N} has width proportional to 1/k^u; z_k is the lower
  // edge of interval k (z_0 = p_1 implicitly, z_N = 0 implicitly).
  std::vector<double> boundaries;
  if (num_servers == 1) return boundaries;
  double norm = 0.0;
  for (std::size_t k = 1; k <= num_servers; ++k) {
    norm += std::pow(static_cast<double>(k), -u);
  }
  boundaries.reserve(num_servers - 1);
  double cumulative = 0.0;
  for (std::size_t k = 1; k < num_servers; ++k) {
    cumulative += std::pow(static_cast<double>(k), -u) / norm;
    boundaries.push_back(top_popularity * (1.0 - cumulative));
  }
  return boundaries;
}

std::vector<std::size_t> ZipfIntervalReplication::assign_for_skew(
    const std::vector<double>& popularity, std::size_t num_servers, double u) {
  const std::size_t m = popularity.size();
  std::vector<std::size_t> replicas(m, 1);
  if (num_servers == 1 || m == 0) return replicas;
  const std::vector<double> z =
      interval_boundaries(popularity.front(), num_servers, u);
  // Popularity is non-increasing, so a single forward walk over the
  // boundaries classifies all videos in O(M + N).
  std::size_t k = 1;  // current interval, 1 = top
  for (std::size_t i = 0; i < m; ++i) {
    while (k < num_servers && popularity[i] <= z[k - 1]) ++k;
    replicas[i] = num_servers - k + 1;
  }
  return replicas;
}

ReplicationPlan ZipfIntervalReplication::replicate(
    const std::vector<double>& popularity, std::size_t num_servers,
    std::size_t budget) const {
  check_replication_inputs(popularity, num_servers, budget);

  ReplicationPlan plan;
  if (num_servers == 1) {
    plan.replicas.assign(popularity.size(), 1);
    return plan;
  }

  // Lemma 4.1: total replicas are non-decreasing in u, ranging from ~M
  // (u -> -inf squeezes every upper interval shut) to M*N (u -> +inf pulls
  // every boundary to zero).  Bisect for the largest total within budget.
  double lo = -64.0;
  double hi = 64.0;
  std::vector<std::size_t> lo_assign =
      assign_for_skew(popularity, num_servers, lo);
  if (total_of(lo_assign) > budget) {
    // Even the most conservative partition exceeds the budget (can happen
    // only when many videos tie at the top popularity); fall back to one
    // replica each, which check_replication_inputs guarantees fits.
    plan.replicas.assign(popularity.size(), 1);
    return plan;
  }
  const std::vector<std::size_t> hi_assign =
      assign_for_skew(popularity, num_servers, hi);
  if (total_of(hi_assign) <= budget) {
    plan.replicas = hi_assign;
    return plan;
  }

  // Termination: the paper stops when the boundary movement falls below the
  // smallest popularity gap; a fixed-precision bisection on u achieves the
  // same discrete convergence with a hard iteration cap.
  for (int iter = 0; iter < 200 && hi - lo > 1e-12; ++iter) {
    const double mid = 0.5 * (lo + hi);
    std::vector<std::size_t> mid_assign =
        assign_for_skew(popularity, num_servers, mid);
    if (total_of(mid_assign) <= budget) {
      lo = mid;
      lo_assign = std::move(mid_assign);
    } else {
      hi = mid;
    }
  }
  plan.replicas = std::move(lo_assign);
  return plan;
}

}  // namespace vodrep
