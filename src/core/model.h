// Problem model: the video set, the server cluster, and the fixed-bit-rate
// replication/placement problem of Section 3 of the paper.
//
// Conventions used throughout the library:
//  * Videos are identified by their popularity rank: video 0 is the most
//    popular.  Popularity vectors are normalized and non-increasing.
//  * All durations are seconds, bit rates are bits/second, storage is bytes.
//  * Under a single fixed encoding bit rate the per-server storage capacity
//    is re-expressed as a whole number of replicas (the paper does the same
//    re-definition in Section 4.1).
#pragma once

#include <cstddef>
#include <vector>

namespace vodrep {

/// The catalogue of M videos.  The paper assumes equal durations (90-minute
/// movies) and a known, non-increasing popularity vector.
struct VideoSet {
  double duration_sec = 0.0;
  std::vector<double> popularity;  ///< normalized, non-increasing, size M

  [[nodiscard]] std::size_t count() const { return popularity.size(); }
};

/// A cluster of N homogeneous servers (paper Section 3.1).
struct ClusterSpec {
  std::size_t num_servers = 0;
  double storage_bytes_per_server = 0.0;    ///< C_j in bytes
  double bandwidth_bps_per_server = 0.0;    ///< B_j, outgoing

  /// Aggregate outgoing bandwidth of the cluster.
  [[nodiscard]] double total_bandwidth_bps() const {
    return static_cast<double>(num_servers) * bandwidth_bps_per_server;
  }
  /// Aggregate storage of the cluster.
  [[nodiscard]] double total_storage_bytes() const {
    return static_cast<double>(num_servers) * storage_bytes_per_server;
  }
  /// Concurrent streams one server can sustain at the given bit rate.
  [[nodiscard]] std::size_t streams_per_server(double bitrate_bps) const;
};

/// The fixed-encoding-bit-rate instance (paper Sections 4.1–4.2): every
/// video is encoded at the same constant bit rate, so storage reduces to
/// replica slots.
struct FixedRateProblem {
  VideoSet videos;
  ClusterSpec cluster;
  double bitrate_bps = 0.0;

  /// Storage occupied by one replica, in bytes.
  [[nodiscard]] double replica_bytes() const;
  /// Replica slots per server: floor(storage / replica size).  The paper's
  /// re-defined capacity C.
  [[nodiscard]] std::size_t replica_capacity_per_server() const;
  /// Total replica slots in the cluster (N * C).
  [[nodiscard]] std::size_t total_replica_capacity() const;
  /// Cluster-wide replication degree achievable at full storage:
  /// total capacity / M.
  [[nodiscard]] double max_replication_degree() const;

  /// Throws InvalidArgumentError unless the instance is consistent: at least
  /// one server and one video, positive duration/bit rate/bandwidth, a valid
  /// popularity vector, and storage for at least one replica per video.
  void validate() const;
};

/// One encoding of a video.  Segment-structured assets carry one variant per
/// encoding ladder rung; whole-file assets carry exactly one.
struct BitrateVariant {
  double bitrate_bps = 0.0;  ///< constant encoding bit rate b_i
  double bytes = 0.0;        ///< full-length size of this variant
};

/// A video as stored on the cluster: a prefix fraction of one or more
/// bitrate variants, optionally cut into fixed-length segments.
///
/// This generalizes the paper's "one video = one whole-file replica" model
/// (Eqs. 1-7): a replica of the asset occupies prefix_fraction * bytes of
/// storage and carries prefix_fraction of the variant's expected bandwidth
/// share.  prefix_fraction == 1.0 with a single variant and segment_sec == 0
/// reduces bit-exactly to the original whole-file model.
struct VideoAsset {
  double duration_sec = 0.0;
  /// Stored fraction of every variant, in (0, 1].  1.0 = whole file.
  double prefix_fraction = 1.0;
  /// Fixed segment length in seconds; 0 means unsegmented (whole prefix is
  /// one object).  When > 0, segment boundaries quantize the prefix.
  double segment_sec = 0.0;
  /// At least one variant, bit rates strictly ascending.
  std::vector<BitrateVariant> variants;

  /// Bytes one replica of this asset occupies: prefix_fraction * total
  /// variant bytes (every variant's prefix is co-located with the replica).
  [[nodiscard]] double replica_bytes() const;
  /// Number of stored segments of the prefix of variant `v`; 0 when
  /// unsegmented.  Partial trailing segments round up (a prefix always ends
  /// on a segment boundary on disk).
  [[nodiscard]] std::size_t num_prefix_segments() const;
  /// Throws InvalidArgumentError unless the asset is consistent: positive
  /// duration, prefix_fraction in (0, 1], non-negative segment_sec, and a
  /// non-empty strictly-ascending positive variant ladder.
  void validate() const;
};

/// The asset view of a catalogue: one VideoAsset per video, popularity
/// shared with the underlying VideoSet ranking.
struct AssetCatalog {
  std::vector<VideoAsset> assets;  ///< size M, rank order
  std::vector<double> popularity;  ///< normalized, non-increasing, size M

  [[nodiscard]] std::size_t count() const { return assets.size(); }
  /// Throws InvalidArgumentError unless sizes match and every asset
  /// validates.
  void validate() const;
};

/// Builds the whole-file single-variant catalogue equivalent to `videos`
/// encoded at `bitrate_bps`: every asset has prefix_fraction 1.0, no
/// segmentation, and one variant sized by the video duration.  This is the
/// bridge from the paper's model to the asset model.
[[nodiscard]] AssetCatalog make_whole_file_catalog(const VideoSet& videos,
                                                   double bitrate_bps);

/// Builds the simulation setting of the paper's Section 5 with the storage
/// sized for the requested replication degree: N=8 servers at 1.8 Gb/s,
/// M videos (default 300) of 90 minutes at 4 Mb/s, Zipf skew `theta`.
/// `replication_degree` >= 1 sets per-server storage to hold exactly
/// round(degree * M) replicas cluster-wide (rounded up to a whole number of
/// per-server slots).
[[nodiscard]] FixedRateProblem make_paper_problem(double theta,
                                                  double replication_degree,
                                                  std::size_t num_videos = 300,
                                                  std::size_t num_servers = 8);

}  // namespace vodrep
