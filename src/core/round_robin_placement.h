// Round-robin placement (the paper's baseline placement).
//
// Replica groups are laid out in video order (v1's replicas, then v2's, ...)
// and dealt onto servers cyclically: the k-th replica overall goes to server
// k mod N.  Because all replicas of one video are consecutive and r_i <= N,
// they automatically land on distinct servers, and the per-server replica
// counts differ by at most one, so the layout is always feasible whenever
// the plan fits the cluster.  Optimal when all per-replica weights are equal
// (paper Section 4.2); oblivious to weight differences otherwise.
#pragma once

#include "src/core/placement.h"

namespace vodrep {

class RoundRobinPlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "round-robin"; }
  [[nodiscard]] Layout place(const ReplicationPlan& plan,
                             const std::vector<double>& popularity,
                             std::size_t num_servers,
                             std::size_t capacity_per_server) const override;
};

}  // namespace vodrep
