// Replication plans and the replication-policy interface (paper Section 4.1).
//
// A replication plan assigns each video v_i a replica count r_i with
// 1 <= r_i <= N (Eq. 7).  Under static round-robin dispatch, each replica of
// v_i carries the communication weight w_i = p_i / r_i (the paper drops the
// constant lambda*T factor).  The fixed-bit-rate replication problem (Eq. 8)
// is to minimize max_i w_i subject to sum r_i <= budget.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace vodrep {

/// Per-video replica counts plus derived quantities.
struct ReplicationPlan {
  std::vector<std::size_t> replicas;  ///< r_i, one entry per video

  [[nodiscard]] std::size_t num_videos() const { return replicas.size(); }
  /// Total replicas across the cluster (sum r_i).
  [[nodiscard]] std::size_t total_replicas() const;
  /// Average number of replicas per video — the paper's replication degree.
  [[nodiscard]] double degree() const;
  /// Per-replica communication weights w_i = popularity[i] / r_i.
  [[nodiscard]] std::vector<double> weights(
      const std::vector<double>& popularity) const;
  /// max_i w_i, the objective of Eq. 8.
  [[nodiscard]] double max_weight(const std::vector<double>& popularity) const;
  /// min_i w_i (appears in the Theorem 4.2 placement bound).
  [[nodiscard]] double min_weight(const std::vector<double>& popularity) const;

  /// Throws InvalidArgumentError unless 1 <= r_i <= num_servers for all i
  /// and total_replicas() <= budget.
  void validate(std::size_t num_servers, std::size_t budget) const;
};

/// Strategy interface for replication algorithms.  `popularity` is the
/// normalized non-increasing popularity vector; `num_servers` bounds each
/// r_i (Eq. 7); `budget` is the cluster-wide replica capacity (N * C after
/// the paper's storage re-definition).  Implementations must return a plan
/// with r_i >= 1 for every video and total <= budget, and should saturate
/// the budget when possible (more replicas never hurt load balancing —
/// Theorem 4.3).  Throws InfeasibleError when budget < number of videos.
class ReplicationPolicy {
 public:
  virtual ~ReplicationPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual ReplicationPlan replicate(
      const std::vector<double>& popularity, std::size_t num_servers,
      std::size_t budget) const = 0;
};

/// Validates common policy preconditions; shared by all implementations.
void check_replication_inputs(const std::vector<double>& popularity,
                              std::size_t num_servers, std::size_t budget);

}  // namespace vodrep
