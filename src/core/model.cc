#include "src/core/model.h"

#include <cmath>

#include "src/util/error.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"

namespace vodrep {

std::size_t ClusterSpec::streams_per_server(double bitrate_bps) const {
  require(bitrate_bps > 0.0, "streams_per_server: bit rate must be positive");
  return static_cast<std::size_t>(bandwidth_bps_per_server / bitrate_bps);
}

double FixedRateProblem::replica_bytes() const {
  return units::video_bytes(videos.duration_sec, bitrate_bps);
}

std::size_t FixedRateProblem::replica_capacity_per_server() const {
  const double bytes = replica_bytes();
  require(bytes > 0.0, "replica_capacity_per_server: zero-sized replica");
  return static_cast<std::size_t>(cluster.storage_bytes_per_server / bytes);
}

std::size_t FixedRateProblem::total_replica_capacity() const {
  return cluster.num_servers * replica_capacity_per_server();
}

double FixedRateProblem::max_replication_degree() const {
  require(videos.count() > 0, "max_replication_degree: empty video set");
  return static_cast<double>(total_replica_capacity()) /
         static_cast<double>(videos.count());
}

void FixedRateProblem::validate() const {
  require(cluster.num_servers >= 1, "problem: need at least one server");
  require(videos.count() >= 1, "problem: need at least one video");
  require(videos.duration_sec > 0.0, "problem: duration must be positive");
  require(bitrate_bps > 0.0, "problem: bit rate must be positive");
  require(cluster.bandwidth_bps_per_server >= bitrate_bps,
          "problem: a server cannot stream even one video");
  require(is_popularity_vector(videos.popularity),
          "problem: popularity must be normalized and non-increasing");
  require(total_replica_capacity() >= videos.count(),
          "problem: cluster storage cannot hold one replica of every video");
}

double VideoAsset::replica_bytes() const {
  double total = 0.0;
  for (const BitrateVariant& v : variants) total += v.bytes;
  return prefix_fraction * total;
}

std::size_t VideoAsset::num_prefix_segments() const {
  if (segment_sec <= 0.0) return 0;
  const double prefix_sec = prefix_fraction * duration_sec;
  return static_cast<std::size_t>(std::ceil(prefix_sec / segment_sec));
}

void VideoAsset::validate() const {
  require(duration_sec > 0.0, "asset: duration must be positive");
  require(prefix_fraction > 0.0 && prefix_fraction <= 1.0,
          "asset: prefix fraction must be in (0, 1]");
  require(segment_sec >= 0.0, "asset: segment length must be non-negative");
  require(!variants.empty(), "asset: need at least one bitrate variant");
  double prev_rate = 0.0;
  for (const BitrateVariant& v : variants) {
    require(v.bitrate_bps > prev_rate,
            "asset: variant bit rates must be positive and strictly ascending");
    require(v.bytes > 0.0, "asset: variant size must be positive");
    prev_rate = v.bitrate_bps;
  }
}

void AssetCatalog::validate() const {
  require(!assets.empty(), "catalog: need at least one asset");
  require(assets.size() == popularity.size(),
          "catalog: asset/popularity size mismatch");
  require(is_popularity_vector(popularity),
          "catalog: popularity must be normalized and non-increasing");
  for (const VideoAsset& asset : assets) asset.validate();
}

AssetCatalog make_whole_file_catalog(const VideoSet& videos,
                                     double bitrate_bps) {
  require(bitrate_bps > 0.0,
          "make_whole_file_catalog: bit rate must be positive");
  AssetCatalog catalog;
  catalog.popularity = videos.popularity;
  catalog.assets.reserve(videos.count());
  for (std::size_t i = 0; i < videos.count(); ++i) {
    VideoAsset asset;
    asset.duration_sec = videos.duration_sec;
    asset.variants.push_back(
        {bitrate_bps, units::video_bytes(videos.duration_sec, bitrate_bps)});
    catalog.assets.push_back(std::move(asset));
  }
  catalog.validate();
  return catalog;
}

FixedRateProblem make_paper_problem(double theta, double replication_degree,
                                    std::size_t num_videos,
                                    std::size_t num_servers) {
  require(replication_degree >= 1.0,
          "make_paper_problem: replication degree must be >= 1");
  FixedRateProblem problem;
  problem.videos.duration_sec = units::minutes(90);
  problem.videos.popularity = zipf_popularity(num_videos, theta);
  problem.bitrate_bps = units::mbps(4);
  problem.cluster.num_servers = num_servers;
  problem.cluster.bandwidth_bps_per_server = units::gbps(1.8);
  // Size the per-server storage for the requested cluster-wide replica
  // budget round(degree * M), rounded up to whole per-server slots.  The
  // replication policies receive the exact budget separately, so the degree
  // realized by a plan matches `replication_degree` up to rounding.
  const auto budget = static_cast<std::size_t>(
      std::llround(replication_degree * static_cast<double>(num_videos)));
  const std::size_t slots_per_server =
      (budget + num_servers - 1) / num_servers;
  problem.cluster.storage_bytes_per_server =
      static_cast<double>(slots_per_server) * problem.replica_bytes();
  problem.validate();
  return problem;
}

}  // namespace vodrep
