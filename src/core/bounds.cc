#include "src/core/bounds.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace vodrep {
namespace {

/// Minimal total replicas needed so every per-replica weight is <= W, or
/// SIZE_MAX when W is infeasible even with r_i = num_servers.
std::size_t replicas_needed(const std::vector<double>& popularity,
                            std::size_t num_servers, double W) {
  std::size_t total = 0;
  for (double p : popularity) {
    // Smallest r with p / r <= W, i.e. r >= p / W.  The epsilon absorbs the
    // round-trip error when W is itself some p_j / r_j.
    const double exact = p / W;
    auto r = static_cast<std::size_t>(std::ceil(exact - 1e-12));
    if (r < 1) r = 1;
    if (r > num_servers) return static_cast<std::size_t>(-1);
    total += r;
  }
  return total;
}

}  // namespace

double slf_spread_bound(const ReplicationPlan& plan,
                        const std::vector<double>& popularity) {
  return plan.max_weight(popularity) - plan.min_weight(popularity);
}

double optimal_max_weight(const std::vector<double>& popularity,
                          std::size_t num_servers, std::size_t budget) {
  check_replication_inputs(popularity, num_servers, budget);
  // The optimal max weight is p_i / r for some video i and r in [1, N]:
  // lowering W past the next candidate cannot change any ceil(p_i / W).
  std::vector<double> candidates;
  candidates.reserve(popularity.size() * num_servers);
  for (double p : popularity) {
    for (std::size_t r = 1; r <= num_servers; ++r) {
      candidates.push_back(p / static_cast<double>(r));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Feasibility is monotone in W: larger thresholds need fewer replicas.
  auto feasible = [&](double W) {
    const std::size_t needed = replicas_needed(popularity, num_servers, W);
    return needed != static_cast<std::size_t>(-1) && needed <= budget;
  };
  std::size_t lo = 0;
  std::size_t hi = candidates.size() - 1;
  require(feasible(candidates[hi]),
          "optimal_max_weight: even the loosest threshold is infeasible");
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (feasible(candidates[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return candidates[lo];
}

}  // namespace vodrep
