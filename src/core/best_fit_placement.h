// Greedy best-fit placement (ablation for the SLF round structure).
//
// Places replicas in non-increasing weight order, each on the least-loaded
// feasible server — the classic LPT list-scheduling rule extended with the
// storage and video-distinctness constraints, but *without* SLF's
// one-replica-per-server-per-round discipline.  Comparing this against SLF
// isolates what the round structure contributes (it prevents a streak of
// heavy replicas from piling onto the momentarily lightest servers while
// other servers still hold no replica of the round).
#pragma once

#include "src/core/placement.h"

namespace vodrep {

class BestFitPlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "best-fit"; }
  [[nodiscard]] Layout place(const ReplicationPlan& plan,
                             const std::vector<double>& popularity,
                             std::size_t num_servers,
                             std::size_t capacity_per_server) const override;
};

}  // namespace vodrep
