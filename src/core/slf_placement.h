// Smallest-load-first placement (paper Algorithm 1, Section 4.2).
//
// Replica groups are sorted by per-replica communication weight in
// non-increasing order.  Placement proceeds in rounds; each round takes the
// N heaviest unplaced replicas and assigns them heaviest-first, each to the
// least-loaded server that (a) has not yet received a replica this round,
// (b) does not already host the replica's video (Eq. 6), and (c) has storage
// left (Eq. 4).  A replica with no feasible server this round is deferred to
// the head of the next round (the paper's example defers v2^3 to "the server
// with the second smallest load" — i.e. the next feasible choice).
//
// Theorem 4.2: the resulting absolute load spread max_j l_j - min_j l_j is
// bounded by max_i w_i - min_i w_i; Theorem 4.3: this bound is
// non-increasing in the replication degree.
#pragma once

#include "src/core/placement.h"

namespace vodrep {

class SmallestLoadFirstPlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "slf"; }
  [[nodiscard]] Layout place(const ReplicationPlan& plan,
                             const std::vector<double>& popularity,
                             std::size_t num_servers,
                             std::size_t capacity_per_server) const override;

  /// One placement decision, for Figure-3-style traces and tests.
  struct Step {
    std::size_t video = 0;
    std::size_t server = 0;
    double weight = 0.0;
    double server_load_after = 0.0;
    std::size_t round = 0;
  };

  /// Like place(), recording each placement decision in order.
  [[nodiscard]] Layout place_traced(const ReplicationPlan& plan,
                                    const std::vector<double>& popularity,
                                    std::size_t num_servers,
                                    std::size_t capacity_per_server,
                                    std::vector<Step>* steps) const;
};

}  // namespace vodrep
