#include "src/core/slf_placement.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "src/audit/audit.h"
#include "src/util/check.h"
#include "src/util/error.h"

namespace vodrep {
namespace {

struct PendingReplica {
  std::size_t video;
  double weight;
};

}  // namespace

Layout SmallestLoadFirstPlacement::place(
    const ReplicationPlan& plan, const std::vector<double>& popularity,
    std::size_t num_servers, std::size_t capacity_per_server) const {
  return place_traced(plan, popularity, num_servers, capacity_per_server,
                      nullptr);
}

Layout SmallestLoadFirstPlacement::place_traced(
    const ReplicationPlan& plan, const std::vector<double>& popularity,
    std::size_t num_servers, std::size_t capacity_per_server,
    std::vector<Step>* steps) const {
  check_placement_inputs(plan, popularity, num_servers, capacity_per_server);

  const std::vector<double> weights = plan.weights(popularity);
  Layout layout;
  layout.assignment.resize(plan.replicas.size());

  // Steps 1-2 of Algorithm 1: all replicas, grouped by video, groups in
  // non-increasing weight order.
  std::deque<PendingReplica> pending;
  for (std::size_t video : videos_by_weight(plan, popularity)) {
    for (std::size_t k = 0; k < plan.replicas[video]; ++k) {
      pending.push_back(PendingReplica{video, weights[video]});
    }
  }

  std::vector<double> loads(num_servers, 0.0);
  std::vector<std::size_t> stored(num_servers, 0);

  auto hosts = [&](std::size_t server, std::size_t video) {
    const auto& servers = layout.assignment[video];
    return std::find(servers.begin(), servers.end(), server) != servers.end();
  };

  std::size_t round = 0;
  while (!pending.empty()) {
    const std::size_t take = std::min<std::size_t>(num_servers, pending.size());
    std::vector<bool> used_this_round(num_servers, false);
    std::deque<PendingReplica> deferred;
    std::size_t placed_this_round = 0;

    for (std::size_t n = 0; n < take; ++n) {
      const PendingReplica replica = pending.front();
      pending.pop_front();

      // Least-loaded feasible server among those unused this round; ties go
      // to the lowest server index for determinism.
      std::size_t best = num_servers;
      double best_load = std::numeric_limits<double>::infinity();
      for (std::size_t s = 0; s < num_servers; ++s) {
        if (used_this_round[s] || stored[s] >= capacity_per_server ||
            hosts(s, replica.video)) {
          continue;
        }
        if (loads[s] < best_load) {
          best_load = loads[s];
          best = s;
        }
      }
      if (best == num_servers) {
        deferred.push_back(replica);  // retried at the head of the next round
        continue;
      }
      used_this_round[best] = true;
      ++stored[best];
      loads[best] += replica.weight;
      layout.assignment[replica.video].push_back(best);
      ++placed_this_round;
      if (steps != nullptr) {
        steps->push_back(
            Step{replica.video, best, replica.weight, loads[best], round});
      }
    }

    if (placed_this_round == 0) {
      // Every candidate replica was infeasible on every server: the
      // distinctness constraint cannot be satisfied with remaining storage.
      throw InfeasibleError(
          "slf placement: no feasible server for the remaining replicas");
    }
    // Deferred replicas are the heaviest remaining; keep them at the front.
    for (auto it = deferred.rbegin(); it != deferred.rend(); ++it) {
      pending.push_front(*it);
    }
    ++round;
  }
#if VODREP_CONTRACTS_ENABLED
  {
    LayoutAuditor::Limits limits;
    limits.num_servers = num_servers;
    limits.capacity_per_server = capacity_per_server;
    const AuditReport report =
        LayoutAuditor(limits).audit(layout, &plan, &popularity);
    VODREP_DCHECK(report.ok(), report.summary());
  }
#endif
  return layout;
}

}  // namespace vodrep
