#include "src/core/adams_replication.h"

#include <queue>
#include <tuple>

namespace vodrep {
namespace {

/// Max-heap entry: the current per-replica weight of a video.  Ties break
/// toward the more popular (smaller-index) video so runs are deterministic
/// and match the worked example in the paper's Figure 1.
struct HeapEntry {
  double weight;
  std::size_t video;

  bool operator<(const HeapEntry& other) const {
    // std::priority_queue is a max-heap on operator<; invert the index
    // comparison so smaller indices win ties.
    return std::tie(weight, other.video) < std::tie(other.weight, video);
  }
};

}  // namespace

ReplicationPlan AdamsReplication::replicate(
    const std::vector<double>& popularity, std::size_t num_servers,
    std::size_t budget) const {
  return replicate_traced(popularity, num_servers, budget, nullptr);
}

ReplicationPlan AdamsReplication::replicate_traced(
    const std::vector<double>& popularity, std::size_t num_servers,
    std::size_t budget, std::vector<AdamsStep>* steps) const {
  check_replication_inputs(popularity, num_servers, budget);
  const std::size_t m = popularity.size();

  ReplicationPlan plan;
  plan.replicas.assign(m, 1);

  std::priority_queue<HeapEntry> heap;
  if (num_servers > 1) {
    for (std::size_t i = 0; i < m; ++i) heap.push(HeapEntry{popularity[i], i});
  }

  std::size_t remaining = budget - m;
  while (remaining > 0 && !heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const std::size_t video = top.video;
    ++plan.replicas[video];
    --remaining;
    const double new_weight =
        popularity[video] / static_cast<double>(plan.replicas[video]);
    if (steps != nullptr) {
      steps->push_back(AdamsStep{video, plan.replicas[video], top.weight,
                                 new_weight});
    }
    if (plan.replicas[video] < num_servers) {
      heap.push(HeapEntry{new_weight, video});
    }
  }
  return plan;
}

}  // namespace vodrep
