// Uniform (round-robin) replication baseline.
//
// Gives every video the same replica count floor(budget / M), then deals the
// leftover replicas to the most popular videos, one each.  Optimal when the
// popularity distribution is uniform (paper Section 4.1: "a simple
// round-robin replication achieves an optimal replication scheme" for
// uniform popularity) and a useful lower-bound baseline otherwise.  Also the
// degenerate "non-replication" scheme when budget == M.
#pragma once

#include "src/core/replication.h"

namespace vodrep {

class UniformReplication final : public ReplicationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "uniform"; }
  [[nodiscard]] ReplicationPlan replicate(const std::vector<double>& popularity,
                                          std::size_t num_servers,
                                          std::size_t budget) const override;
};

}  // namespace vodrep
