// Scalable-encoding-bit-rate model (paper Section 4.3).
//
// In the general problem each video may be encoded at any rate from a
// discrete ladder; higher rates buy quality but consume more storage (Eq. 4)
// and more outgoing bandwidth per stream (Eq. 5), squeezing the replication
// degree.  A solution fixes, per video, one encoding bit rate (all replicas
// of a video share it, since they are copies of the same encoding) and a set
// of distinct host servers.
//
// Bandwidth accounting is the paper's conservative peak model: all
// lambda*T*p_i requests of the peak period are budgeted as if concurrent, so
// the expected outgoing load of server j is
//     l_j = sum over replicas (i on j) of  (lambda*T*p_i / r_i) * b_i.
// With this convention the saturation arrival rate of Section 5 (40 req/min
// = 3600 requests over 90 min at 4 Mb/s against 14.4 Gb/s) uses the cluster
// bandwidth exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/model.h"
#include "src/core/objective.h"

namespace vodrep {

/// The discrete set of admissible encoding bit rates, ascending.
struct BitrateLadder {
  std::vector<double> rates_bps;

  [[nodiscard]] std::size_t size() const { return rates_bps.size(); }
  [[nodiscard]] double lowest() const;
  [[nodiscard]] double highest() const;
  /// Throws unless non-empty, positive, strictly ascending.
  void validate() const;
};

/// Problem instance for the scalable-rate optimization.
struct ScalableProblem {
  VideoSet videos;
  ClusterSpec cluster;
  BitrateLadder ladder;
  /// Expected number of requests in the peak period (lambda * T); scales
  /// the normalized popularities into request counts for Eq. 5.
  double expected_peak_requests = 0.0;
  ObjectiveWeights weights;
  /// Lower bound for the per-video stored prefix fraction (segment/prefix
  /// content model, DESIGN.md section 9).  1.0 (the default) pins every
  /// replica to a whole file — the paper's original decision space; values
  /// in (0, 1) open the continuous prefix-fraction knob to the solver.
  double min_prefix_fraction = 1.0;

  void validate() const;
};

/// A full configuration: per-video ladder index + per-video host servers.
struct ScalableSolution {
  std::vector<std::size_t> bitrate_index;            ///< into ladder.rates_bps
  std::vector<std::vector<std::size_t>> placement;   ///< distinct servers per video
  /// Per-video stored prefix fraction in (0, 1].  Empty means every video is
  /// stored whole (fraction exactly 1.0), which evaluates bit-exactly like
  /// the pre-asset whole-file model.  A replica of video i occupies
  /// f_i * bytes of storage and carries f_i of the Eq. 5 bandwidth share.
  std::vector<double> prefix_fraction;

  [[nodiscard]] std::size_t num_videos() const { return bitrate_index.size(); }
  /// Per-video replica counts.
  [[nodiscard]] std::vector<std::size_t> replicas() const;
  /// Per-video encoding bit rates in b/s.
  [[nodiscard]] std::vector<double> bitrates(const BitrateLadder& ladder) const;
  /// Prefix fraction of one video (1.0 when `prefix_fraction` is empty).
  [[nodiscard]] double fraction_of(std::size_t video) const {
    return prefix_fraction.empty() ? 1.0 : prefix_fraction[video];
  }
};

/// Per-server resource usage of a solution.
struct ServerUsage {
  std::vector<double> storage_bytes;   ///< Eq. 4 left-hand side per server
  std::vector<double> bandwidth_bps;   ///< Eq. 5 left-hand side per server
};

[[nodiscard]] ServerUsage compute_usage(const ScalableProblem& problem,
                                        const ScalableSolution& solution);

/// True when every server satisfies Eqs. 4 and 5 and every video has between
/// 1 and N distinct hosts (Eqs. 6 and 7).
[[nodiscard]] bool is_feasible(const ScalableProblem& problem,
                               const ScalableSolution& solution);

/// Eq. 1 objective of a solution (higher is better).  The load vector fed to
/// the imbalance term is the per-server bandwidth usage.
[[nodiscard]] double solution_objective(const ScalableProblem& problem,
                                        const ScalableSolution& solution);

/// The paper's initial solution: every video at the lowest ladder rate, one
/// replica each, dealt round-robin over the servers.  Throws InfeasibleError
/// if even this does not fit storage.
[[nodiscard]] ScalableSolution lowest_rate_round_robin(
    const ScalableProblem& problem);

}  // namespace vodrep
