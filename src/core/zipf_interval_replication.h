// Zipf-like-distribution-based replication (paper Section 4.1.2).
//
// A time-efficient approximation to the optimal Adams scheme that exploits
// the known Zipf shape of the popularity vector.  The popularity axis
// [0, p_1] is partitioned into N intervals whose widths follow a Zipf-like
// law with a tunable skew parameter u: interval k (k = 1 at the top of the
// popularity range) has width
//
//     width_k = p_1 * (1 / k^u) / sum_{j=1..N} (1 / j^u).
//
// Every video whose popularity falls inside interval k is assigned
// r = N - k + 1 replicas (top interval -> N replicas, bottom -> 1).
//
// Lemma 4.1 of the paper: the total replica count is non-decreasing in u
// (raising u widens the top intervals, pushing every boundary down, so
// videos can only move to higher intervals).  The algorithm binary-searches
// u for the largest total that fits the budget; with the termination
// condition driven by the smallest popularity gap the whole scheme runs in
// O(M log M).
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/replication.h"

namespace vodrep {

class ZipfIntervalReplication final : public ReplicationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "zipf"; }
  [[nodiscard]] ReplicationPlan replicate(const std::vector<double>& popularity,
                                          std::size_t num_servers,
                                          std::size_t budget) const override;

  /// The interval boundaries z_1 > z_2 > ... > z_{N-1} generated for skew u
  /// (the paper's generate(u) function): z_k is the lower edge of interval k.
  /// Exposed for tests and the Figure-2 trace binary.
  [[nodiscard]] static std::vector<double> interval_boundaries(
      double top_popularity, std::size_t num_servers, double u);

  /// The paper's assignment(u, r) function: replica counts implied by skew u
  /// (before any budget correction).  Video in interval k gets N - k + 1.
  [[nodiscard]] static std::vector<std::size_t> assign_for_skew(
      const std::vector<double>& popularity, std::size_t num_servers,
      double u);
};

}  // namespace vodrep
