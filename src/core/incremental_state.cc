#include "src/core/incremental_state.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"
#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {

IncrementalState::IncrementalState(const ScalableProblem& problem,
                                   ScalableSolution solution)
    : problem_(&problem),
      solution_(std::move(solution)),
      num_servers_(problem.cluster.num_servers) {
  const std::size_t m = problem.videos.count();
  require(solution_.bitrate_index.size() == m && solution_.placement.size() == m,
          "IncrementalState: solution/problem size mismatch");

  slot_bytes_.reserve(problem.ladder.size());
  slot_mbps_.reserve(problem.ladder.size());
  for (double rate : problem.ladder.rates_bps) {
    slot_bytes_.push_back(units::video_bytes(problem.videos.duration_sec, rate));
    slot_mbps_.push_back(units::to_mbps(rate));
  }
  peak_requests_.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    peak_requests_.push_back(problem.expected_peak_requests *
                             problem.videos.popularity[i]);
  }

  storage_bytes_.assign(num_servers_, 0.0);
  bandwidth_bps_.assign(num_servers_, 0.0);
  server_videos_.resize(num_servers_);
  host_pos_.assign(m * num_servers_, kNoPos);

  for (std::size_t i = 0; i < m; ++i) {
    const auto& servers = solution_.placement[i];
    require(!servers.empty(), "IncrementalState: video with no replica");
    const std::size_t idx = solution_.bitrate_index[i];
    require(idx < problem.ladder.size(),
            "IncrementalState: ladder index out of range");
    const double per_replica_bps =
        peak_requests_[i] / static_cast<double>(servers.size()) *
        problem.ladder.rates_bps[idx];
    for (std::size_t s : servers) {
      require(s < num_servers_, "IncrementalState: server index out of range");
      require(host_pos_[i * num_servers_ + s] == kNoPos,
              "IncrementalState: duplicate replica");
      storage_bytes_[s] += slot_bytes_[idx];
      bandwidth_bps_[s] += per_replica_bps;
      host_pos_[i * num_servers_ + s] = server_videos_[s].size();
      server_videos_[s].push_back(i);
    }
    rate_sum_mbps_ += slot_mbps_[idx];
    replica_sum_ += servers.size();
  }

  const double cap = problem.cluster.bandwidth_bps_per_server;
  for (std::size_t s = 0; s < num_servers_; ++s) {
    total_load_bps_ += bandwidth_bps_[s];
    if (bandwidth_bps_[s] > cap) {
      overflow_sum_ += (bandwidth_bps_[s] - cap) / cap;
      ++overflow_count_;
    }
    if (bandwidth_bps_[s] > bandwidth_bps_[max_server_]) max_server_ = s;
  }
}

void IncrementalState::add_load(std::size_t server, double delta) {
  const double cap = problem_->cluster.bandwidth_bps_per_server;
  const double before = bandwidth_bps_[server];
  const double after = before + delta;
  bandwidth_bps_[server] = after;
  total_load_bps_ += delta;

  const double over_before = before > cap ? (before - cap) / cap : 0.0;
  const double over_after = after > cap ? (after - cap) / cap : 0.0;
  if (over_before > 0.0 && over_after == 0.0) {
    --overflow_count_;
  } else if (over_before == 0.0 && over_after > 0.0) {
    ++overflow_count_;
  }
  overflow_sum_ += over_after - over_before;
  // With no overflowing server the penalty is exactly zero; resetting here
  // discards the drift accumulated across past excursions over the cap.
  if (overflow_count_ == 0) overflow_sum_ = 0.0;

  if (!max_dirty_) {
    if (server == max_server_) {
      // The max server's load fell: some other server may now lead.  Defer
      // the O(N) re-scan until the max is actually needed.
      if (delta < 0.0) max_dirty_ = true;
    } else if (after > bandwidth_bps_[max_server_]) {
      max_server_ = server;
    }
  }
}

double IncrementalState::max_bandwidth_bps() const {
  if (max_dirty_) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < num_servers_; ++s) {
      if (bandwidth_bps_[s] > bandwidth_bps_[best]) best = s;
    }
    max_server_ = best;
    max_dirty_ = false;
  }
  return bandwidth_bps_[max_server_];
}

void IncrementalState::apply_set_bitrate(std::size_t video,
                                         std::size_t ladder_index,
                                         bool journal) {
  const std::size_t prev = solution_.bitrate_index[video];
  if (prev == ladder_index) return;
  if (journal) journal_.push_back({Op::kSetBitrate, video, prev});

  const auto& servers = solution_.placement[video];
  const auto replicas = static_cast<double>(servers.size());
  const double delta_bytes = slot_bytes_[ladder_index] - slot_bytes_[prev];
  const double delta_bps =
      peak_requests_[video] / replicas *
      (problem_->ladder.rates_bps[ladder_index] -
       problem_->ladder.rates_bps[prev]);
  for (std::size_t s : servers) {
    storage_bytes_[s] += delta_bytes;
    add_load(s, delta_bps);
  }
  rate_sum_mbps_ += slot_mbps_[ladder_index] - slot_mbps_[prev];
  solution_.bitrate_index[video] = ladder_index;
}

void IncrementalState::apply_add_replica(std::size_t video, std::size_t server,
                                         bool journal) {
  if (journal) journal_.push_back({Op::kAddReplica, video, server});

  auto& servers = solution_.placement[video];
  const std::size_t idx = solution_.bitrate_index[video];
  const double rate = problem_->ladder.rates_bps[idx];
  const auto r_old = static_cast<double>(servers.size());
  const double per_old = peak_requests_[video] / r_old * rate;
  const double per_new = peak_requests_[video] / (r_old + 1.0) * rate;
  // Adding a host redistributes this video's requests over r+1 replicas, so
  // every existing host sheds a share of its load.
  for (std::size_t s : servers) add_load(s, per_new - per_old);
  servers.push_back(server);
  storage_bytes_[server] += slot_bytes_[idx];
  add_load(server, per_new);
  host_pos_[video * num_servers_ + server] = server_videos_[server].size();
  server_videos_[server].push_back(video);
  ++replica_sum_;
}

void IncrementalState::apply_drop_replica(std::size_t video, std::size_t server,
                                          bool journal) {
  if (journal) journal_.push_back({Op::kDropReplica, video, server});

  auto& servers = solution_.placement[video];
  const std::size_t idx = solution_.bitrate_index[video];
  const double rate = problem_->ladder.rates_bps[idx];
  const auto r_old = static_cast<double>(servers.size());
  const double per_old = peak_requests_[video] / r_old * rate;
  const double per_new = peak_requests_[video] / (r_old - 1.0) * rate;
  servers.erase(std::find(servers.begin(), servers.end(), server));
  storage_bytes_[server] -= slot_bytes_[idx];
  add_load(server, -per_old);
  for (std::size_t s : servers) add_load(s, per_new - per_old);

  std::vector<std::size_t>& hosted = server_videos_[server];
  const std::size_t pos = host_pos_[video * num_servers_ + server];
  VODREP_DCHECK_NE(pos, kNoPos,
                   "drop_replica: reverse index lost track of a replica");
  VODREP_DCHECK_LT(pos, hosted.size(),
                   "drop_replica: reverse index position out of range");
  VODREP_DCHECK_EQ(hosted[pos], video,
                   "drop_replica: reverse index points at the wrong video");
  const std::size_t moved = hosted.back();
  hosted[pos] = moved;
  host_pos_[moved * num_servers_ + server] = pos;
  hosted.pop_back();
  host_pos_[video * num_servers_ + server] = kNoPos;
  if (hosted.empty()) {
    // An empty server's usage is exactly zero; snap there so add/sub drift
    // cannot leave a (possibly negative) residue.
    storage_bytes_[server] = 0.0;
    add_load(server, -bandwidth_bps_[server]);
  }
  VODREP_DCHECK_GE(storage_bytes_[server], -1e-3,
                   "drop_replica: negative cached storage after removal");
  VODREP_DCHECK_GT(replica_sum_, std::size_t{0},
                   "drop_replica: replica sum underflow");
  --replica_sum_;
}

void IncrementalState::set_bitrate(std::size_t video, std::size_t ladder_index) {
  require(video < solution_.num_videos(), "set_bitrate: video out of range");
  require(ladder_index < problem_->ladder.size(),
          "set_bitrate: ladder index out of range");
  apply_set_bitrate(video, ladder_index, /*journal=*/true);
}

void IncrementalState::add_replica(std::size_t video, std::size_t server) {
  require(video < solution_.num_videos(), "add_replica: video out of range");
  require(server < num_servers_, "add_replica: server out of range");
  require(!is_hosted(video, server), "add_replica: replica already hosted");
  apply_add_replica(video, server, /*journal=*/true);
}

void IncrementalState::drop_replica(std::size_t video, std::size_t server) {
  require(video < solution_.num_videos(), "drop_replica: video out of range");
  require(server < num_servers_, "drop_replica: server out of range");
  require(is_hosted(video, server), "drop_replica: replica not hosted");
  require(solution_.placement[video].size() >= 2,
          "drop_replica: cannot drop the last replica (Eq. 6)");
  apply_drop_replica(video, server, /*journal=*/true);
}

void IncrementalState::rollback(Checkpoint mark) {
  require(mark <= journal_.size(), "rollback: checkpoint from the future");
  while (journal_.size() > mark) {
    const JournalEntry entry = journal_.back();
    journal_.pop_back();
    switch (entry.op) {
      case Op::kSetBitrate:
        apply_set_bitrate(entry.video, entry.aux, /*journal=*/false);
        break;
      case Op::kAddReplica:
        apply_drop_replica(entry.video, entry.aux, /*journal=*/false);
        break;
      case Op::kDropReplica:
        apply_add_replica(entry.video, entry.aux, /*journal=*/false);
        break;
    }
  }
}

double IncrementalState::objective() const {
  const auto m = static_cast<double>(solution_.num_videos());
  const auto n = static_cast<double>(num_servers_);
  const double mean_rate_mbps = rate_sum_mbps_ / m;
  const double mean_degree_normalized =
      static_cast<double>(replica_sum_) / m / n;
  const ObjectiveWeights& weights = problem_->weights;
  double l = 0.0;
  if (weights.imbalance_definition == ImbalanceDefinition::kMaxRelative) {
    const double mean = total_load_bps_ / n;
    if (mean > 0.0) {
      l = std::max(0.0, (max_bandwidth_bps() - mean) / mean);
    }
  } else {
    l = imbalance_cv(bandwidth_bps_);
  }
  return mean_rate_mbps + weights.alpha * mean_degree_normalized -
         weights.beta * l;
}

double IncrementalState::relative_bandwidth_overflow() const {
  return overflow_count_ == 0 ? 0.0 : std::max(0.0, overflow_sum_);
}

void IncrementalState::debug_inject_drift(std::size_t server,
                                          double storage_delta_bytes,
                                          double bandwidth_delta_bps) {
  require(server < num_servers_, "debug_inject_drift: server out of range");
  storage_bytes_[server] += storage_delta_bytes;
  bandwidth_bps_[server] += bandwidth_delta_bps;
}

}  // namespace vodrep
