#include "src/core/incremental_state.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"
#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {

namespace {
constexpr std::size_t kIndexLimit = 0xffffffffULL;
}  // namespace

IncrementalState::IncrementalState(const ScalableProblem& problem,
                                   ScalableSolution solution)
    : problem_(&problem),
      num_servers_(problem.cluster.num_servers),
      bandwidth_cap_bps_(problem.cluster.bandwidth_bps_per_server),
      storage_cap_bytes_(problem.cluster.storage_bytes_per_server) {
  const std::size_t m = problem.videos.count();
  require(solution.bitrate_index.size() == m && solution.placement.size() == m,
          "IncrementalState: solution/problem size mismatch");
  require(solution.prefix_fraction.empty() ||
              solution.prefix_fraction.size() == m,
          "IncrementalState: prefix-fraction size mismatch");
  require(m < kIndexLimit && num_servers_ < kIndexLimit &&
              problem.ladder.size() < kIndexLimit,
          "IncrementalState: index exceeds the 32-bit SoA layout");

  slot_bytes_.reserve(problem.ladder.size());
  slot_mbps_.reserve(problem.ladder.size());
  for (double rate : problem.ladder.rates_bps) {
    slot_bytes_.push_back(units::video_bytes(problem.videos.duration_sec, rate));
    slot_mbps_.push_back(units::to_mbps(rate));
  }
  peak_requests_.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    peak_requests_.push_back(problem.expected_peak_requests *
                             problem.videos.popularity[i]);
  }

  bitrate_index_.resize(m);
  prefix_fraction_.assign(m, 1.0);
  if (!solution.prefix_fraction.empty()) {
    for (std::size_t i = 0; i < m; ++i) {
      const double f = solution.prefix_fraction[i];
      require(f > 0.0 && f <= 1.0,
              "IncrementalState: prefix fraction must be in (0, 1]");
      prefix_fraction_[i] = f;
    }
  }
  replica_count_.assign(m, 0);
  replica_server_.assign(m * kInlineReplicas, 0);
  replica_pos_.assign(m * kInlineReplicas, 0);
  spill_server_.resize(m);
  spill_pos_.resize(m);
  storage_bytes_.assign(num_servers_, 0.0);
  bandwidth_bps_.assign(num_servers_, 0.0);
  server_videos_.resize(num_servers_);

  for (std::size_t i = 0; i < m; ++i) {
    const auto& servers = solution.placement[i];
    require(!servers.empty(), "IncrementalState: video with no replica");
    const std::size_t idx = solution.bitrate_index[i];
    require(idx < problem.ladder.size(),
            "IncrementalState: ladder index out of range");
    bitrate_index_[i] = static_cast<std::uint32_t>(idx);
    // A replica stores/serves only the f_i prefix.  f_i == 1.0 multiplies
    // the whole-file terms by exactly 1, so the default is bit-identical to
    // the pre-asset accounting.
    const double fraction = prefix_fraction_[i];
    const double per_replica_bps =
        peak_requests_[i] / static_cast<double>(servers.size()) *
        problem.ladder.rates_bps[idx] * fraction;
    const auto video = static_cast<std::uint32_t>(i);
    for (std::size_t s : servers) {
      require(s < num_servers_, "IncrementalState: server index out of range");
      require(!is_hosted(i, s), "IncrementalState: duplicate replica");
      storage_bytes_[s] += slot_bytes_[idx] * fraction;
      bandwidth_bps_[s] += per_replica_bps;
      push_replica(video, static_cast<std::uint32_t>(s),
                   static_cast<std::uint32_t>(server_videos_[s].size()));
      server_videos_[s].push_back(video);
    }
    rate_sum_mbps_ += slot_mbps_[idx];
    replica_sum_ += servers.size();
    degree_sum_ += static_cast<double>(servers.size()) * fraction;
  }

  for (std::size_t s = 0; s < num_servers_; ++s) {
    total_load_bps_ += bandwidth_bps_[s];
    if (bandwidth_bps_[s] > bandwidth_cap_bps_) {
      overflow_sum_ += (bandwidth_bps_[s] - bandwidth_cap_bps_) /
                       bandwidth_cap_bps_;
      ++overflow_count_;
    }
    if (storage_bytes_[s] > storage_cap_bytes_) ++storage_over_count_;
    if (bandwidth_bps_[s] > bandwidth_bps_[max_server_]) max_server_ = s;
  }
}

ScalableSolution IncrementalState::to_solution() const {
  ScalableSolution solution;
  const std::size_t m = num_videos();
  solution.bitrate_index.assign(bitrate_index_.begin(), bitrate_index_.end());
  solution.placement.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::span<const std::uint32_t> servers = replicas_of(i);
    solution.placement[i].assign(servers.begin(), servers.end());
  }
  // Emit fractions only when some video is partial, so whole-file snapshots
  // stay byte-identical to pre-asset ones (empty vector == all 1.0).
  for (double f : prefix_fraction_) {
    if (f != 1.0) {
      solution.prefix_fraction = prefix_fraction_;
      break;
    }
  }
  return solution;
}

std::pair<std::uint32_t*, std::uint32_t*> IncrementalState::replica_arrays(
    std::uint32_t video) {
  if (replica_count_[video] <= kInlineReplicas) {
    return {&replica_server_[static_cast<std::size_t>(video) * kInlineReplicas],
            &replica_pos_[static_cast<std::size_t>(video) * kInlineReplicas]};
  }
  return {spill_server_[video].data(), spill_pos_[video].data()};
}

std::size_t IncrementalState::find_replica(std::uint32_t video,
                                           std::uint32_t server) const {
  const std::span<const std::uint32_t> servers = replicas_of(video);
  for (std::size_t j = 0; j < servers.size(); ++j) {
    if (servers[j] == server) return j;
  }
  return servers.size();
}

void IncrementalState::push_replica(std::uint32_t video, std::uint32_t server,
                                    std::uint32_t pos) {
  const std::uint32_t count = replica_count_[video];
  const std::size_t base = static_cast<std::size_t>(video) * kInlineReplicas;
  if (count < kInlineReplicas) {
    replica_server_[base + count] = server;
    replica_pos_[base + count] = pos;
  } else {
    std::vector<std::uint32_t>& servers = spill_server_[video];
    std::vector<std::uint32_t>& positions = spill_pos_[video];
    if (count == kInlineReplicas) {
      // Crossing the strip boundary: the whole set moves to the heap (the
      // vectors keep their capacity across spill/un-spill round trips).
      servers.assign(&replica_server_[base],
                     &replica_server_[base + kInlineReplicas]);
      positions.assign(&replica_pos_[base],
                       &replica_pos_[base + kInlineReplicas]);
    }
    servers.push_back(server);
    positions.push_back(pos);
  }
  replica_count_[video] = count + 1;
}

void IncrementalState::remove_replica_at(std::uint32_t video,
                                         std::size_t index) {
  const std::uint32_t count = replica_count_[video];
  VODREP_DCHECK_LT(index, static_cast<std::size_t>(count),
                   "remove_replica_at: index out of range");
  if (count <= kInlineReplicas) {
    const std::size_t base = static_cast<std::size_t>(video) * kInlineReplicas;
    replica_server_[base + index] = replica_server_[base + count - 1];
    replica_pos_[base + index] = replica_pos_[base + count - 1];
  } else {
    std::vector<std::uint32_t>& servers = spill_server_[video];
    std::vector<std::uint32_t>& positions = spill_pos_[video];
    servers[index] = servers.back();
    positions[index] = positions.back();
    servers.pop_back();
    positions.pop_back();
    if (count - 1 == kInlineReplicas) {
      // Back at the strip boundary: copy the set inline and keep the spill
      // capacity around for the next excursion.
      const std::size_t base =
          static_cast<std::size_t>(video) * kInlineReplicas;
      std::copy(servers.begin(), servers.end(), &replica_server_[base]);
      std::copy(positions.begin(), positions.end(), &replica_pos_[base]);
      servers.clear();
      positions.clear();
    }
  }
  replica_count_[video] = count - 1;
}

void IncrementalState::add_load(std::size_t server, double delta) {
  const double cap = bandwidth_cap_bps_;
  const double before = bandwidth_bps_[server];
  const double after = before + delta;
  bandwidth_bps_[server] = after;
  total_load_bps_ += delta;

  // Branch-free overflow accounting: the ternaries compile to conditional
  // selects, and the unsigned count update wraps correctly for -1/0/+1.
  const double over_before = before > cap ? (before - cap) / cap : 0.0;
  const double over_after = after > cap ? (after - cap) / cap : 0.0;
  overflow_count_ += static_cast<std::size_t>(over_after > 0.0) -
                     static_cast<std::size_t>(over_before > 0.0);
  overflow_sum_ += over_after - over_before;
  // With no overflowing server the penalty is exactly zero; resetting here
  // discards the drift accumulated across past excursions over the cap.
  overflow_sum_ = overflow_count_ == 0 ? 0.0 : overflow_sum_;

  // Branchless lazy max: a shrinking max server defers the O(N) re-scan; a
  // growing non-max server takes the lead immediately.
  const bool is_max = server == max_server_;
  max_dirty_ = max_dirty_ || (is_max && delta < 0.0);
  const bool take_lead =
      !max_dirty_ && !is_max && after > bandwidth_bps_[max_server_];
  max_server_ = take_lead ? server : max_server_;
}

void IncrementalState::add_storage(std::size_t server, double delta) {
  const double cap = storage_cap_bytes_;
  const double before = storage_bytes_[server];
  const double after = before + delta;
  storage_bytes_[server] = after;
  storage_over_count_ += static_cast<std::size_t>(after > cap) -
                         static_cast<std::size_t>(before > cap);
}

double IncrementalState::max_bandwidth_bps() const {
  if (max_dirty_) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < num_servers_; ++s) {
      if (bandwidth_bps_[s] > bandwidth_bps_[best]) best = s;
    }
    max_server_ = best;
    max_dirty_ = false;
  }
  return bandwidth_bps_[max_server_];
}

void IncrementalState::apply_set_bitrate(std::uint32_t video,
                                         std::uint32_t ladder_index,
                                         bool journal) {
  const std::uint32_t prev = bitrate_index_[video];
  if (prev == ladder_index) return;
  if (journal) journal_.push_back({Op::kSetBitrate, video, prev, 0.0});

  const std::span<const std::uint32_t> servers = replicas_of(video);
  const auto replicas = static_cast<double>(servers.size());
  const double fraction = prefix_fraction_[video];
  const double delta_bytes =
      (slot_bytes_[ladder_index] - slot_bytes_[prev]) * fraction;
  const double delta_bps =
      peak_requests_[video] / replicas *
      (problem_->ladder.rates_bps[ladder_index] -
       problem_->ladder.rates_bps[prev]) *
      fraction;
  for (std::uint32_t s : servers) {
    add_storage(s, delta_bytes);
    add_load(s, delta_bps);
  }
  rate_sum_mbps_ += slot_mbps_[ladder_index] - slot_mbps_[prev];
  bitrate_index_[video] = ladder_index;
}

void IncrementalState::apply_set_prefix_fraction(std::uint32_t video,
                                                 double fraction,
                                                 bool journal) {
  const double prev = prefix_fraction_[video];
  if (prev == fraction) return;
  if (journal) {
    journal_.push_back({Op::kSetPrefixFraction, video, 0, prev});
  }

  const std::uint32_t idx = bitrate_index_[video];
  const std::span<const std::uint32_t> servers = replicas_of(video);
  const auto replicas = static_cast<double>(servers.size());
  const double delta = fraction - prev;
  const double delta_bytes = slot_bytes_[idx] * delta;
  const double delta_bps =
      peak_requests_[video] / replicas * problem_->ladder.rates_bps[idx] *
      delta;
  for (std::uint32_t s : servers) {
    add_storage(s, delta_bytes);
    add_load(s, delta_bps);
  }
  degree_sum_ += replicas * delta;
  prefix_fraction_[video] = fraction;
}

void IncrementalState::apply_add_replica(std::uint32_t video,
                                         std::uint32_t server, bool journal) {
  if (journal) journal_.push_back({Op::kAddReplica, video, server, 0.0});

  const std::uint32_t idx = bitrate_index_[video];
  const double rate = problem_->ladder.rates_bps[idx];
  const double fraction = prefix_fraction_[video];
  const auto r_old = static_cast<double>(replica_count_[video]);
  const double per_old = peak_requests_[video] / r_old * rate * fraction;
  const double per_new =
      peak_requests_[video] / (r_old + 1.0) * rate * fraction;
  // Adding a host redistributes this video's requests over r+1 replicas, so
  // every existing host sheds a share of its load.
  for (std::uint32_t s : replicas_of(video)) add_load(s, per_new - per_old);
  add_storage(server, slot_bytes_[idx] * fraction);
  add_load(server, per_new);
  push_replica(video, server,
               static_cast<std::uint32_t>(server_videos_[server].size()));
  server_videos_[server].push_back(video);
  ++replica_sum_;
  degree_sum_ += fraction;
}

void IncrementalState::apply_drop_replica(std::uint32_t video,
                                          std::uint32_t server, bool journal) {
  if (journal) journal_.push_back({Op::kDropReplica, video, server, 0.0});

  const std::uint32_t idx = bitrate_index_[video];
  const double rate = problem_->ladder.rates_bps[idx];
  const double fraction = prefix_fraction_[video];
  const auto r_old = static_cast<double>(replica_count_[video]);
  const double per_old = peak_requests_[video] / r_old * rate * fraction;
  const double per_new =
      peak_requests_[video] / (r_old - 1.0) * rate * fraction;

  const std::size_t index = find_replica(video, server);
  VODREP_DCHECK_LT(index, static_cast<std::size_t>(replica_count_[video]),
                   "drop_replica: replica set lost track of a replica");
  const std::uint32_t pos = replica_arrays(video).second[index];
  remove_replica_at(video, index);

  add_storage(server, -(slot_bytes_[idx] * fraction));
  add_load(server, -per_old);
  for (std::uint32_t s : replicas_of(video)) add_load(s, per_new - per_old);

  std::vector<std::uint32_t>& hosted = server_videos_[server];
  VODREP_DCHECK_LT(static_cast<std::size_t>(pos), hosted.size(),
                   "drop_replica: reverse index position out of range");
  VODREP_DCHECK_EQ(hosted[pos], video,
                   "drop_replica: reverse index points at the wrong video");
  const std::uint32_t moved = hosted.back();
  hosted[pos] = moved;
  hosted.pop_back();
  if (moved != video) {
    // Tell the moved video's replica entry about its new position.
    auto [servers, positions] = replica_arrays(moved);
    const std::size_t moved_index = find_replica(moved, server);
    VODREP_DCHECK_LT(moved_index,
                     static_cast<std::size_t>(replica_count_[moved]),
                     "drop_replica: swap-removed video not hosted here");
    positions[moved_index] = pos;
    (void)servers;
  }
  if (hosted.empty()) {
    // An empty server's usage is exactly zero; snap there so add/sub drift
    // cannot leave a (possibly negative) residue.  x + (-x) is exactly +0.0,
    // so routing through the accounting helpers keeps the overflow counts
    // consistent.
    add_storage(server, -storage_bytes_[server]);
    add_load(server, -bandwidth_bps_[server]);
  }
  VODREP_DCHECK_GE(storage_bytes_[server], -1e-3,
                   "drop_replica: negative cached storage after removal");
  VODREP_DCHECK_GT(replica_sum_, std::size_t{0},
                   "drop_replica: replica sum underflow");
  --replica_sum_;
  degree_sum_ -= fraction;
}

void IncrementalState::set_bitrate(std::size_t video, std::size_t ladder_index) {
  require(video < num_videos(), "set_bitrate: video out of range");
  require(ladder_index < problem_->ladder.size(),
          "set_bitrate: ladder index out of range");
  apply_set_bitrate(static_cast<std::uint32_t>(video),
                    static_cast<std::uint32_t>(ladder_index),
                    /*journal=*/true);
}

void IncrementalState::add_replica(std::size_t video, std::size_t server) {
  require(video < num_videos(), "add_replica: video out of range");
  require(server < num_servers_, "add_replica: server out of range");
  require(!is_hosted(video, server), "add_replica: replica already hosted");
  apply_add_replica(static_cast<std::uint32_t>(video),
                    static_cast<std::uint32_t>(server), /*journal=*/true);
}

void IncrementalState::drop_replica(std::size_t video, std::size_t server) {
  require(video < num_videos(), "drop_replica: video out of range");
  require(server < num_servers_, "drop_replica: server out of range");
  require(is_hosted(video, server), "drop_replica: replica not hosted");
  require(replica_count_[video] >= 2,
          "drop_replica: cannot drop the last replica (Eq. 6)");
  apply_drop_replica(static_cast<std::uint32_t>(video),
                     static_cast<std::uint32_t>(server), /*journal=*/true);
}

void IncrementalState::set_prefix_fraction(std::size_t video,
                                           double fraction) {
  require(video < num_videos(), "set_prefix_fraction: video out of range");
  require(fraction > 0.0 && fraction <= 1.0,
          "set_prefix_fraction: fraction must be in (0, 1]");
  apply_set_prefix_fraction(static_cast<std::uint32_t>(video), fraction,
                            /*journal=*/true);
}

void IncrementalState::rollback(Checkpoint mark) {
  require(mark <= journal_.size(), "rollback: checkpoint from the future");
  while (journal_.size() > mark) {
    const JournalEntry entry = journal_.back();
    journal_.pop_back();
    switch (entry.op) {
      case Op::kSetBitrate:
        apply_set_bitrate(entry.video, entry.aux, /*journal=*/false);
        break;
      case Op::kAddReplica:
        apply_drop_replica(entry.video, entry.aux, /*journal=*/false);
        break;
      case Op::kDropReplica:
        apply_add_replica(entry.video, entry.aux, /*journal=*/false);
        break;
      case Op::kSetPrefixFraction:
        apply_set_prefix_fraction(entry.video, entry.fraction,
                                  /*journal=*/false);
        break;
    }
  }
}

double IncrementalState::objective() const {
  const auto m = static_cast<double>(num_videos());
  const auto n = static_cast<double>(num_servers_);
  const double mean_rate_mbps = rate_sum_mbps_ / m;
  // degree_sum_ == replica_sum_ exactly while every prefix fraction is 1.0
  // (integer-valued double arithmetic), so the whole-file objective is
  // unchanged bit for bit.
  const double mean_degree_normalized = degree_sum_ / m / n;
  const ObjectiveWeights& weights = problem_->weights;
  double l = 0.0;
  if (weights.imbalance_definition == ImbalanceDefinition::kMaxRelative) {
    const double mean = total_load_bps_ / n;
    if (mean > 0.0) {
      l = std::max(0.0, (max_bandwidth_bps() - mean) / mean);
    }
  } else {
    l = imbalance_cv(bandwidth_bps_);
  }
  return mean_rate_mbps + weights.alpha * mean_degree_normalized -
         weights.beta * l;
}

double IncrementalState::relative_bandwidth_overflow() const {
  return overflow_count_ == 0 ? 0.0 : std::max(0.0, overflow_sum_);
}

void IncrementalState::debug_inject_drift(std::size_t server,
                                          double storage_delta_bytes,
                                          double bandwidth_delta_bps) {
  require(server < num_servers_, "debug_inject_drift: server out of range");
  storage_bytes_[server] += storage_delta_bytes;
  bandwidth_bps_[server] += bandwidth_delta_bps;
}

}  // namespace vodrep
