#include "src/core/best_fit_placement.h"

#include <algorithm>
#include <limits>

#include "src/audit/audit.h"
#include "src/util/check.h"
#include "src/util/error.h"

namespace vodrep {

Layout BestFitPlacement::place(const ReplicationPlan& plan,
                               const std::vector<double>& popularity,
                               std::size_t num_servers,
                               std::size_t capacity_per_server) const {
  check_placement_inputs(plan, popularity, num_servers, capacity_per_server);
  const std::vector<double> weights = plan.weights(popularity);
  Layout layout;
  layout.assignment.resize(plan.replicas.size());
  std::vector<double> loads(num_servers, 0.0);
  std::vector<std::size_t> stored(num_servers, 0);

  for (std::size_t video : videos_by_weight(plan, popularity)) {
    for (std::size_t k = 0; k < plan.replicas[video]; ++k) {
      std::size_t best = num_servers;
      double best_load = std::numeric_limits<double>::infinity();
      const auto& already = layout.assignment[video];
      for (std::size_t s = 0; s < num_servers; ++s) {
        if (stored[s] >= capacity_per_server) continue;
        if (std::find(already.begin(), already.end(), s) != already.end()) {
          continue;
        }
        if (loads[s] < best_load) {
          best_load = loads[s];
          best = s;
        }
      }
      if (best == num_servers) {
        throw InfeasibleError(
            "best-fit placement: no feasible server for a replica");
      }
      layout.assignment[video].push_back(best);
      loads[best] += weights[video];
      ++stored[best];
    }
  }
#if VODREP_CONTRACTS_ENABLED
  {
    LayoutAuditor::Limits limits;
    limits.num_servers = num_servers;
    limits.capacity_per_server = capacity_per_server;
    const AuditReport report =
        LayoutAuditor(limits).audit(layout, &plan, &popularity);
    VODREP_DCHECK(report.ok(), report.summary());
  }
#endif
  return layout;
}

}  // namespace vodrep
