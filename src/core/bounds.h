// Analytic bounds from the paper's theorems, used by tests and the
// bound-check experiment (E8 in DESIGN.md).
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/replication.h"

namespace vodrep {

/// Theorem 4.2: an upper bound on the absolute load spread
/// (max_j l_j - min_j l_j) produced by smallest-load-first placement:
/// max_i w_i - min_i w_i with w_i = p_i / r_i.
[[nodiscard]] double slf_spread_bound(const ReplicationPlan& plan,
                                      const std::vector<double>& popularity);

/// The optimal value of Eq. 8 computed by brute force: the smallest
/// achievable max_i p_i / r_i over all feasible plans with sum r_i <=
/// budget, r_i in [1, num_servers].  Uses the exchange-argument fact that an
/// optimal plan exists with r_i = min(num_servers, ceil(p_i / W)) for the
/// optimal threshold W, and binary-searches W over the O(M * N) candidate
/// weights.  Intended for validating AdamsReplication on arbitrary sizes.
[[nodiscard]] double optimal_max_weight(const std::vector<double>& popularity,
                                        std::size_t num_servers,
                                        std::size_t budget);

}  // namespace vodrep
