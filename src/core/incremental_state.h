// Incremental annealing state for the scalable-bit-rate problem.
//
// The SA solver proposes millions of small moves (raise one video's rate,
// add or drop one replica).  Re-deriving per-server usage and the Eq. 1
// objective from scratch per candidate costs O(M*r + N); this class keeps
// that state live and updates it in O(r) per primitive move, where r is the
// touched video's replica count (<= N and typically tiny).
//
// Storage is structure-of-arrays, sized for the ROADMAP's M=1M x N=1024
// regime:
//
//   * per-server storage (Eq. 4 LHS) and expected bandwidth (Eq. 5 LHS) in
//     flat contiguous double arrays;
//   * per-video ladder slot and replica count in flat uint32 arrays;
//   * each video's replica set (hosting servers + the replica's position in
//     the server's reverse index) inline in a fixed kInlineReplicas-wide
//     uint32 strip — the common r<=4 case touches one cache line and zero
//     heap indirections — spilling the whole set to a per-video heap vector
//     only while r exceeds the strip (the old dense M*N position table would
//     be 8 GB at the north-star scale);
//   * a server -> hosted-videos reverse index (swap-remove, O(1) updates) so
//     neighborhood generation never rescans the placement of all M videos;
//   * the objective's running sums (encoding-rate sum, replica count, total
//     cluster load), the Eq. 2 max term via a branchless lazy max, and the
//     soft bandwidth-overflow penalty with an overflowing-server count so
//     the all-feasible case pays nothing and accumulates no float drift;
//   * an overflowing-server count for storage too, so repair loops can skip
//     their O(N) scan in the common nothing-to-fix case.
//
// Mutations are journaled: `checkpoint()` marks the journal, `rollback(mark)`
// undoes every primitive op back to the mark (a rejected composite
// move-plus-repair), `commit()` forgets the journal.  Invariants (running
// sums equal the from-scratch `compute_usage` + `objective_value` up to
// float drift) are enforced by tests/incremental_state_test.cc.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/scalable.h"

namespace vodrep {

class IncrementalState {
 public:
  using Checkpoint = std::size_t;

  /// Consumes `solution` and derives all running state from it in
  /// O(M*r + N).  `problem` must outlive this object.
  IncrementalState(const ScalableProblem& problem, ScalableSolution solution);

  // --- Primitive mutations (journaled; see checkpoint/rollback/commit) ---

  /// Re-encodes `video` at ladder slot `ladder_index`; O(r) usage updates.
  void set_bitrate(std::size_t video, std::size_t ladder_index);
  /// Hosts a new replica of `video` on `server` (must not already host it).
  void add_replica(std::size_t video, std::size_t server);
  /// Removes the replica of `video` on `server`; never the last replica.
  void drop_replica(std::size_t video, std::size_t server);
  /// Re-trims `video`'s replicas to store the prefix `fraction` in (0, 1]
  /// of the file (segment/prefix content model); O(r) usage updates.  All
  /// fractions start at the solution's values (1.0 when it carries none),
  /// and every term the fraction scales reduces bit-exactly to the
  /// whole-file accounting while the fraction stays at 1.0.
  void set_prefix_fraction(std::size_t video, double fraction);

  // --- Transaction control ---

  [[nodiscard]] Checkpoint checkpoint() const { return journal_.size(); }
  /// Undoes journaled mutations, most recent first, back to `mark`.
  void rollback(Checkpoint mark);
  /// Accepts all journaled mutations (empties the undo journal).
  void commit() { journal_.clear(); }
  /// Drops journal entries before `mark` (undo beyond it is no longer
  /// possible) and shifts later checkpoints down by `mark`.  Lets a caller
  /// that keeps the journal alive across commits — to roll back to a marked
  /// best configuration later — bound the journal's memory: trim to the
  /// mark it still cares about, then treat that mark as 0.
  void forget_history(Checkpoint mark) {
    journal_.erase(journal_.begin(),
                   journal_.begin() + static_cast<std::ptrdiff_t>(mark));
  }

  // --- Observers ---

  [[nodiscard]] const ScalableProblem& problem() const { return *problem_; }
  /// Materializes the current configuration as a ScalableSolution, O(M*r).
  /// The SoA layout keeps no solution object live, so this is a snapshot
  /// for extraction, auditing, and interop — never call it per move.
  [[nodiscard]] ScalableSolution to_solution() const;

  [[nodiscard]] std::size_t num_videos() const { return bitrate_index_.size(); }
  [[nodiscard]] std::size_t bitrate_index(std::size_t video) const {
    return bitrate_index_[video];
  }
  [[nodiscard]] std::size_t replica_count(std::size_t video) const {
    return replica_count_[video];
  }
  [[nodiscard]] double prefix_fraction(std::size_t video) const {
    return prefix_fraction_[video];
  }
  /// Running stored-degree sum: sum_i r_i * f_i (equals the replica count
  /// exactly while every fraction is 1.0); the Eq. 1 replication term's
  /// numerator under the prefix model.
  [[nodiscard]] double degree_sum() const { return degree_sum_; }
  /// Servers hosting `video`, in unspecified order (swap-remove set); a
  /// contiguous view into the inline strip or the spill vector.
  [[nodiscard]] std::span<const std::uint32_t> replicas_of(
      std::size_t video) const {
    const std::uint32_t count = replica_count_[video];
    return count <= kInlineReplicas
               ? std::span<const std::uint32_t>(
                     &replica_server_[video * kInlineReplicas], count)
               : std::span<const std::uint32_t>(spill_server_[video].data(),
                                                count);
  }
  /// O(r) membership test over the replica strip.
  [[nodiscard]] bool is_hosted(std::size_t video, std::size_t server) const {
    const auto target = static_cast<std::uint32_t>(server);
    for (std::uint32_t s : replicas_of(video)) {
      if (s == target) return true;
    }
    return false;
  }

  [[nodiscard]] const std::vector<double>& storage_bytes() const {
    return storage_bytes_;
  }
  [[nodiscard]] const std::vector<double>& bandwidth_bps() const {
    return bandwidth_bps_;
  }
  /// Videos hosted on `server`, in unspecified order (swap-remove index).
  [[nodiscard]] const std::vector<std::uint32_t>& videos_on(
      std::size_t server) const {
    return server_videos_[server];
  }

  /// True while any server exceeds its storage (resp. bandwidth) capacity;
  /// O(1), maintained alongside the usage arrays.  Lets repair loops skip
  /// their per-server scan in the common nothing-overflowing case.
  [[nodiscard]] bool any_storage_overflow() const {
    return storage_over_count_ != 0;
  }
  [[nodiscard]] bool any_bandwidth_overflow() const {
    return overflow_count_ != 0;
  }

  /// Eq. 1 objective of the current configuration from the running sums;
  /// O(1) except for the lazy max re-scan (O(N)) after the max server's load
  /// decreased.  The Eq. 3 (CV) imbalance definition is computed over the
  /// live load vector in O(N) — no running sum of squares, whose
  /// cancellation would cost precision exactly when loads are nearly equal.
  [[nodiscard]] double objective() const;
  /// Soft-constraint term: sum over servers of max(0, (l_j - B) / B).
  [[nodiscard]] double relative_bandwidth_overflow() const;
  /// Largest per-server bandwidth load (lazy max).
  [[nodiscard]] double max_bandwidth_bps() const;

  /// Test hook for the audit layer (LayoutAuditor::audit_state): additively
  /// perturbs the cached per-server sums while leaving the configuration
  /// intact, so tests can prove that cache drift is detected.  Never called
  /// by solvers.
  void debug_inject_drift(std::size_t server, double storage_delta_bytes,
                          double bandwidth_delta_bps);

  /// Replica sets at or below this count live inline in the SoA strip;
  /// larger sets spill to a per-video heap vector (and move back when they
  /// shrink to the strip again).  Exposed for the boundary property tests.
  static constexpr std::uint32_t kInlineReplicas = 4;

 private:
  enum class Op : unsigned char {
    kSetBitrate,
    kAddReplica,
    kDropReplica,
    kSetPrefixFraction,
  };
  struct JournalEntry {
    Op op;
    std::uint32_t video;
    std::uint32_t aux;  ///< prev ladder index (kSetBitrate) or server id
    double fraction;    ///< prev prefix fraction (kSetPrefixFraction only)
  };

  void apply_set_bitrate(std::uint32_t video, std::uint32_t ladder_index,
                         bool journal);
  void apply_set_prefix_fraction(std::uint32_t video, double fraction,
                                 bool journal);
  void apply_add_replica(std::uint32_t video, std::uint32_t server,
                         bool journal);
  void apply_drop_replica(std::uint32_t video, std::uint32_t server,
                          bool journal);
  /// Single entry point for load changes: maintains the total-load sum, the
  /// overflow penalty term, and the lazy-max bookkeeping.
  void add_load(std::size_t server, double delta);
  /// Single entry point for storage changes: maintains the overflow count.
  void add_storage(std::size_t server, double delta);

  /// Appends (server, pos) to video's replica set, spilling inline entries
  /// to the heap when the strip overflows.
  void push_replica(std::uint32_t video, std::uint32_t server,
                    std::uint32_t pos);
  /// Swap-removes replica entry `index`, un-spilling back to the strip when
  /// the set shrinks to kInlineReplicas.
  void remove_replica_at(std::uint32_t video, std::size_t index);
  /// Index of `server` in video's replica set; count when absent.
  [[nodiscard]] std::size_t find_replica(std::uint32_t video,
                                         std::uint32_t server) const;
  /// Mutable (servers, positions) base pointers of video's replica set.
  [[nodiscard]] std::pair<std::uint32_t*, std::uint32_t*> replica_arrays(
      std::uint32_t video);

  const ScalableProblem* problem_;
  std::size_t num_servers_ = 0;
  double bandwidth_cap_bps_ = 0.0;
  double storage_cap_bytes_ = 0.0;

  // Per-ladder-slot constants (all videos share the paper's fixed duration).
  std::vector<double> slot_bytes_;
  std::vector<double> slot_mbps_;
  // Per-video expected peak requests: lambda*T * p_i.
  std::vector<double> peak_requests_;

  // SoA per-video configuration.
  std::vector<std::uint32_t> bitrate_index_;
  std::vector<double> prefix_fraction_;
  std::vector<std::uint32_t> replica_count_;
  std::vector<std::uint32_t> replica_server_;  ///< [video*kInlineReplicas+j]
  std::vector<std::uint32_t> replica_pos_;     ///< parallel: pos in videos_on
  std::vector<std::vector<std::uint32_t>> spill_server_;
  std::vector<std::vector<std::uint32_t>> spill_pos_;

  // Per-server usage and reverse index.
  std::vector<double> storage_bytes_;
  std::vector<double> bandwidth_bps_;
  std::vector<std::vector<std::uint32_t>> server_videos_;

  double rate_sum_mbps_ = 0.0;
  std::size_t replica_sum_ = 0;
  /// sum_i r_i * f_i; sums/differences of exact integers while every f_i is
  /// 1.0, so the Eq. 1 degree term stays bit-identical to the whole-file
  /// replica_sum_ path until a fractional move happens.
  double degree_sum_ = 0.0;
  double total_load_bps_ = 0.0;
  double overflow_sum_ = 0.0;
  std::size_t overflow_count_ = 0;
  std::size_t storage_over_count_ = 0;

  mutable std::size_t max_server_ = 0;
  mutable bool max_dirty_ = false;

  std::vector<JournalEntry> journal_;
};

}  // namespace vodrep
