// Incremental annealing state for the scalable-bit-rate problem.
//
// The SA solver proposes millions of small moves (raise one video's rate,
// add or drop one replica).  Re-deriving per-server usage and the Eq. 1
// objective from scratch per candidate costs O(M*r + N); this class keeps
// that state live and updates it in O(r) per primitive move, where r is the
// touched video's replica count (<= N and typically tiny):
//
//   * per-server storage (Eq. 4 LHS) and expected bandwidth (Eq. 5 LHS);
//   * the objective's running sums: encoding-rate sum (Mb/s), replica count,
//     and total cluster load;
//   * the Eq. 2 max term via a lazy max: the argmax server is tracked
//     eagerly while loads grow and only re-scanned (O(N)) after a move
//     lowered the current max server's load;
//   * a server -> hosted-videos reverse index (swap-remove, O(1) updates,
//     O(1) membership) so neighborhood generation never rescans the
//     placement of all M videos;
//   * the soft bandwidth-overflow penalty term (sum over servers of relative
//     excess), with an overflowing-server count so the common all-feasible
//     case pays nothing and accumulates no float drift.
//
// Mutations are journaled: `checkpoint()` marks the journal, `rollback(mark)`
// undoes every primitive op back to the mark (a rejected composite
// move-plus-repair), `commit()` forgets the journal.  Invariants (running
// sums equal the from-scratch `compute_usage` + `objective_value` up to
// float drift) are enforced by tests/incremental_state_test.cc.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/scalable.h"

namespace vodrep {

class IncrementalState {
 public:
  using Checkpoint = std::size_t;

  /// Takes ownership of `solution` and derives all running state from it in
  /// O(M*r + N).  `problem` must outlive this object.
  IncrementalState(const ScalableProblem& problem, ScalableSolution solution);

  // --- Primitive mutations (journaled; see checkpoint/rollback/commit) ---

  /// Re-encodes `video` at ladder slot `ladder_index`; O(r) usage updates.
  void set_bitrate(std::size_t video, std::size_t ladder_index);
  /// Hosts a new replica of `video` on `server` (must not already host it).
  void add_replica(std::size_t video, std::size_t server);
  /// Removes the replica of `video` on `server`; never the last replica.
  void drop_replica(std::size_t video, std::size_t server);

  // --- Transaction control ---

  [[nodiscard]] Checkpoint checkpoint() const { return journal_.size(); }
  /// Undoes journaled mutations, most recent first, back to `mark`.
  void rollback(Checkpoint mark);
  /// Accepts all journaled mutations (empties the undo journal).
  void commit() { journal_.clear(); }

  // --- Observers ---

  [[nodiscard]] const ScalableProblem& problem() const { return *problem_; }
  [[nodiscard]] const ScalableSolution& solution() const { return solution_; }
  [[nodiscard]] const std::vector<double>& storage_bytes() const {
    return storage_bytes_;
  }
  [[nodiscard]] const std::vector<double>& bandwidth_bps() const {
    return bandwidth_bps_;
  }
  /// Videos hosted on `server`, in unspecified order (swap-remove index).
  [[nodiscard]] const std::vector<std::size_t>& videos_on(
      std::size_t server) const {
    return server_videos_[server];
  }
  /// O(1) membership test.
  [[nodiscard]] bool is_hosted(std::size_t video, std::size_t server) const {
    return host_pos_[video * num_servers_ + server] != kNoPos;
  }

  /// Eq. 1 objective of the current configuration from the running sums;
  /// O(1) except for the lazy max re-scan (O(N)) after the max server's load
  /// decreased.  The Eq. 3 (CV) imbalance definition is computed over the
  /// live load vector in O(N) — no running sum of squares, whose
  /// cancellation would cost precision exactly when loads are nearly equal.
  [[nodiscard]] double objective() const;
  /// Soft-constraint term: sum over servers of max(0, (l_j - B) / B).
  [[nodiscard]] double relative_bandwidth_overflow() const;
  /// Largest per-server bandwidth load (lazy max).
  [[nodiscard]] double max_bandwidth_bps() const;

  /// Test hook for the audit layer (LayoutAuditor::audit_state): additively
  /// perturbs the cached per-server sums while leaving the solution intact,
  /// so tests can prove that cache drift is detected.  Never called by
  /// solvers.
  void debug_inject_drift(std::size_t server, double storage_delta_bytes,
                          double bandwidth_delta_bps);

 private:
  enum class Op : unsigned char { kSetBitrate, kAddReplica, kDropReplica };
  struct JournalEntry {
    Op op;
    std::size_t video;
    std::size_t aux;  ///< prev ladder index (kSetBitrate) or server id
  };
  static constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);

  void apply_set_bitrate(std::size_t video, std::size_t ladder_index,
                         bool journal);
  void apply_add_replica(std::size_t video, std::size_t server, bool journal);
  void apply_drop_replica(std::size_t video, std::size_t server, bool journal);
  /// Single entry point for load changes: maintains the total-load sum, the
  /// overflow penalty term, and the lazy-max bookkeeping.
  void add_load(std::size_t server, double delta);

  const ScalableProblem* problem_;
  ScalableSolution solution_;
  std::size_t num_servers_ = 0;

  // Per-ladder-slot constants (all videos share the paper's fixed duration).
  std::vector<double> slot_bytes_;
  std::vector<double> slot_mbps_;
  // Per-video expected peak requests: lambda*T * p_i.
  std::vector<double> peak_requests_;

  std::vector<double> storage_bytes_;
  std::vector<double> bandwidth_bps_;
  std::vector<std::vector<std::size_t>> server_videos_;
  std::vector<std::size_t> host_pos_;  ///< [video * N + server] -> position

  double rate_sum_mbps_ = 0.0;
  std::size_t replica_sum_ = 0;
  double total_load_bps_ = 0.0;
  double overflow_sum_ = 0.0;
  std::size_t overflow_count_ = 0;

  mutable std::size_t max_server_ = 0;
  mutable bool max_dirty_ = false;

  std::vector<JournalEntry> journal_;
};

}  // namespace vodrep
