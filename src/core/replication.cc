#include "src/core/replication.h"

#include <algorithm>

#include "src/util/error.h"
#include "src/workload/popularity.h"

namespace vodrep {

std::size_t ReplicationPlan::total_replicas() const {
  std::size_t total = 0;
  for (std::size_t r : replicas) total += r;
  return total;
}

double ReplicationPlan::degree() const {
  require(!replicas.empty(), "ReplicationPlan::degree: empty plan");
  return static_cast<double>(total_replicas()) /
         static_cast<double>(replicas.size());
}

std::vector<double> ReplicationPlan::weights(
    const std::vector<double>& popularity) const {
  require(popularity.size() == replicas.size(),
          "ReplicationPlan::weights: popularity size mismatch");
  std::vector<double> w(replicas.size());
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    require(replicas[i] >= 1, "ReplicationPlan::weights: r_i must be >= 1");
    w[i] = popularity[i] / static_cast<double>(replicas[i]);
  }
  return w;
}

double ReplicationPlan::max_weight(
    const std::vector<double>& popularity) const {
  const auto w = weights(popularity);
  return *std::max_element(w.begin(), w.end());
}

double ReplicationPlan::min_weight(
    const std::vector<double>& popularity) const {
  const auto w = weights(popularity);
  return *std::min_element(w.begin(), w.end());
}

void ReplicationPlan::validate(std::size_t num_servers,
                               std::size_t budget) const {
  require(!replicas.empty(), "ReplicationPlan::validate: empty plan");
  for (std::size_t r : replicas) {
    require(r >= 1, "ReplicationPlan::validate: every video needs a replica");
    require(r <= num_servers,
            "ReplicationPlan::validate: r_i exceeds server count (Eq. 7)");
  }
  require(total_replicas() <= budget,
          "ReplicationPlan::validate: plan exceeds the storage budget");
}

void check_replication_inputs(const std::vector<double>& popularity,
                              std::size_t num_servers, std::size_t budget) {
  require(is_popularity_vector(popularity),
          "replication: popularity must be normalized and non-increasing");
  require(num_servers >= 1, "replication: need at least one server");
  if (budget < popularity.size()) {
    throw InfeasibleError(
        "replication: budget cannot hold one replica of every video");
  }
}

}  // namespace vodrep
