// Load-imbalance metrics and the combined optimization objective (paper
// Section 3.2, Eqs. 1–3).
#pragma once

#include <cstddef>
#include <vector>

namespace vodrep {

/// Eq. 2: L = (max_j l_j - l_bar) / l_bar, the relative excess of the most
/// loaded server over the mean.  Returns 0 when all loads are zero (an idle
/// cluster is perfectly balanced).  Throws on empty input or negative loads.
[[nodiscard]] double imbalance_max_relative(const std::vector<double>& loads);

/// Eq. 3: L = sqrt((1/N) * sum_j (l_j - l_bar)^2) / l_bar, the coefficient
/// of variation of the loads (population standard deviation over mean).
/// Returns 0 when all loads are zero.
[[nodiscard]] double imbalance_cv(const std::vector<double>& loads);

/// Absolute spread max_j l_j - min_j l_j.  This is the quantity the
/// Theorem 4.2 placement bound controls.
[[nodiscard]] double load_spread(const std::vector<double>& loads);

/// Which imbalance definition an objective evaluation should use.
enum class ImbalanceDefinition { kMaxRelative /*Eq. 2*/, kCoefficientOfVariation /*Eq. 3*/ };

[[nodiscard]] double imbalance(const std::vector<double>& loads,
                               ImbalanceDefinition definition);

/// Weights of the combined objective of Eq. 1:
///   O = mean encoding bit rate [Mb/s]
///     + alpha * mean replication degree (replicas normalized by N)
///     - beta  * load-imbalance degree L.
/// The paper leaves the relative weighting factors alpha, beta free; the
/// normalizations used here (bit rate in Mb/s, degree relative to full
/// replication) put all three terms on comparable O(1) scales and are
/// documented in EXPERIMENTS.md.
struct ObjectiveWeights {
  double alpha = 1.0;
  double beta = 1.0;
  ImbalanceDefinition imbalance_definition = ImbalanceDefinition::kMaxRelative;
};

/// Evaluates Eq. 1.  `bitrates_bps` holds one encoding bit rate per video,
/// `replicas` one count per video, `loads` one expected load per server,
/// `num_servers` normalizes the replication term.
[[nodiscard]] double objective_value(const std::vector<double>& bitrates_bps,
                                     const std::vector<std::size_t>& replicas,
                                     const std::vector<double>& loads,
                                     std::size_t num_servers,
                                     const ObjectiveWeights& weights);

/// Eq. 1 generalized to prefix assets: the replication term becomes the mean
/// *stored* degree sum_i r_i * f_i / (M * N), where f_i is video i's prefix
/// fraction.  `prefix_fraction` is either empty (every f_i = 1.0, reducing
/// bit-exactly to the whole-file overload above) or one fraction in (0, 1]
/// per video.  The rate and imbalance terms are unchanged: partial replicas
/// stream at the full encoding rate, and `loads` already reflect whatever
/// bandwidth model produced them.
[[nodiscard]] double objective_value(const std::vector<double>& bitrates_bps,
                                     const std::vector<std::size_t>& replicas,
                                     const std::vector<double>& prefix_fraction,
                                     const std::vector<double>& loads,
                                     std::size_t num_servers,
                                     const ObjectiveWeights& weights);

}  // namespace vodrep
