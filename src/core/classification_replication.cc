#include "src/core/classification_replication.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace vodrep {
namespace {

/// Replica count of class `k` (0-based) out of `num_classes` at scale `s`,
/// clamped to [1, num_servers].
std::size_t class_replicas(std::size_t k, std::size_t num_classes,
                           std::size_t num_servers, double s) {
  const double rank = static_cast<double>(num_classes - k);
  const auto r = static_cast<long long>(std::llround(s * rank));
  const long long clamped =
      std::clamp<long long>(r, 1, static_cast<long long>(num_servers));
  return static_cast<std::size_t>(clamped);
}

}  // namespace

std::vector<std::size_t> ClassificationReplication::classify(
    std::size_t num_videos, std::size_t num_classes) {
  require(num_videos >= 1, "classify: need at least one video");
  require(num_classes >= 1, "classify: need at least one class");
  std::vector<std::size_t> classes(num_videos);
  // Distribute videos over classes as evenly as possible, earlier classes
  // taking the remainder (so the hottest class is never the smallest).
  const std::size_t base = num_videos / num_classes;
  const std::size_t extra = num_videos % num_classes;
  std::size_t video = 0;
  for (std::size_t k = 0; k < num_classes && video < num_videos; ++k) {
    const std::size_t size = base + (k < extra ? 1 : 0);
    for (std::size_t j = 0; j < size; ++j) classes[video++] = k;
  }
  while (video < num_videos) classes[video++] = num_classes - 1;
  return classes;
}

ReplicationPlan ClassificationReplication::replicate(
    const std::vector<double>& popularity, std::size_t num_servers,
    std::size_t budget) const {
  check_replication_inputs(popularity, num_servers, budget);
  const std::size_t m = popularity.size();
  const std::size_t classes_count =
      num_classes_ == 0 ? std::min(num_servers, m) : std::min(num_classes_, m);
  const std::vector<std::size_t> classes = classify(m, classes_count);

  auto total_at = [&](double s) {
    std::size_t total = 0;
    for (std::size_t i = 0; i < m; ++i) {
      total += class_replicas(classes[i], classes_count, num_servers, s);
    }
    return total;
  };

  // The induced total is a non-decreasing step function of s; bisect for the
  // largest scale whose total fits the budget.
  double lo = 0.0;  // every class clamps to 1 replica -> total = M <= budget
  double hi = static_cast<double>(num_servers) + 1.0;  // full replication
  if (total_at(hi) <= budget) {
    lo = hi;
  } else {
    for (int iter = 0; iter < 100 && hi - lo > 1e-9; ++iter) {
      const double mid = 0.5 * (lo + hi);
      (total_at(mid) <= budget ? lo : hi) = mid;
    }
  }

  ReplicationPlan plan;
  plan.replicas.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    plan.replicas[i] =
        class_replicas(classes[i], classes_count, num_servers, lo);
  }
  return plan;
}

}  // namespace vodrep
