#include "src/core/layout.h"

#include "src/audit/audit.h"
#include "src/util/error.h"

namespace vodrep {

std::vector<std::size_t> Layout::replicas_per_server(
    std::size_t num_servers) const {
  std::vector<std::size_t> counts(num_servers, 0);
  for (const auto& servers : assignment) {
    for (std::size_t s : servers) {
      require(s < num_servers, "Layout: server index out of range");
      ++counts[s];
    }
  }
  return counts;
}

std::vector<double> Layout::fractional_replicas_per_server(
    const std::vector<double>& prefix_fraction,
    std::size_t num_servers) const {
  require(prefix_fraction.size() == assignment.size(),
          "Layout: prefix-fraction size mismatch");
  std::vector<double> slots(num_servers, 0.0);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const double f = prefix_fraction[i];
    require(f > 0.0 && f <= 1.0,
            "Layout: prefix fraction must be in (0, 1]");
    for (std::size_t s : assignment[i]) {
      require(s < num_servers, "Layout: server index out of range");
      slots[s] += f;
    }
  }
  return slots;
}

std::vector<double> Layout::expected_loads(
    const std::vector<double>& popularity, std::size_t num_servers) const {
  require(popularity.size() == assignment.size(),
          "Layout::expected_loads: popularity size mismatch");
  std::vector<double> loads(num_servers, 0.0);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const auto& servers = assignment[i];
    require(!servers.empty(), "Layout::expected_loads: video has no replica");
    const double w = popularity[i] / static_cast<double>(servers.size());
    for (std::size_t s : servers) {
      require(s < num_servers, "Layout::expected_loads: server out of range");
      loads[s] += w;
    }
  }
  return loads;
}

ReplicationPlan Layout::implied_plan() const {
  ReplicationPlan plan;
  plan.replicas.reserve(assignment.size());
  for (const auto& servers : assignment) plan.replicas.push_back(servers.size());
  return plan;
}

void Layout::validate(const ReplicationPlan& plan, std::size_t num_servers,
                      std::size_t capacity_per_server) const {
  LayoutAuditor::Limits limits;
  limits.num_servers = num_servers;
  limits.capacity_per_server = capacity_per_server;
  const AuditReport report = LayoutAuditor(limits).audit(*this, &plan);
  require(report.ok(),
          [&] { return "Layout::validate: " + report.summary(); });
}

void Layout::validate(const ReplicationPlan& plan, std::size_t num_servers,
                      std::size_t capacity_per_server,
                      const std::vector<double>& popularity,
                      double bandwidth_bps_per_server,
                      double expected_peak_requests,
                      double bitrate_bps) const {
  LayoutAuditor::Limits limits;
  limits.num_servers = num_servers;
  limits.capacity_per_server = capacity_per_server;
  limits.bandwidth_bps_per_server = bandwidth_bps_per_server;
  limits.expected_peak_requests = expected_peak_requests;
  limits.bitrate_bps = bitrate_bps;
  const AuditReport report =
      LayoutAuditor(limits).audit(*this, &plan, &popularity);
  require(report.ok(),
          [&] { return "Layout::validate: " + report.summary(); });
}

}  // namespace vodrep
