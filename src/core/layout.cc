#include "src/core/layout.h"

#include <algorithm>

#include "src/util/error.h"

namespace vodrep {

std::vector<std::size_t> Layout::replicas_per_server(
    std::size_t num_servers) const {
  std::vector<std::size_t> counts(num_servers, 0);
  for (const auto& servers : assignment) {
    for (std::size_t s : servers) {
      require(s < num_servers, "Layout: server index out of range");
      ++counts[s];
    }
  }
  return counts;
}

std::vector<double> Layout::expected_loads(
    const std::vector<double>& popularity, std::size_t num_servers) const {
  require(popularity.size() == assignment.size(),
          "Layout::expected_loads: popularity size mismatch");
  std::vector<double> loads(num_servers, 0.0);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const auto& servers = assignment[i];
    require(!servers.empty(), "Layout::expected_loads: video has no replica");
    const double w = popularity[i] / static_cast<double>(servers.size());
    for (std::size_t s : servers) {
      require(s < num_servers, "Layout::expected_loads: server out of range");
      loads[s] += w;
    }
  }
  return loads;
}

ReplicationPlan Layout::implied_plan() const {
  ReplicationPlan plan;
  plan.replicas.reserve(assignment.size());
  for (const auto& servers : assignment) plan.replicas.push_back(servers.size());
  return plan;
}

void Layout::validate(const ReplicationPlan& plan, std::size_t num_servers,
                      std::size_t capacity_per_server) const {
  require(assignment.size() == plan.replicas.size(),
          "Layout::validate: video count mismatch with plan");
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const auto& servers = assignment[i];
    require(servers.size() == plan.replicas[i],
            "Layout::validate: replica count differs from the plan");
    std::vector<std::size_t> sorted = servers;
    std::sort(sorted.begin(), sorted.end());
    require(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
            "Layout::validate: duplicate server for one video (Eq. 6)");
    require(sorted.empty() || sorted.back() < num_servers,
            "Layout::validate: server index out of range");
  }
  for (std::size_t count : replicas_per_server(num_servers)) {
    require(count <= capacity_per_server,
            "Layout::validate: server over storage capacity (Eq. 4)");
  }
}

}  // namespace vodrep
