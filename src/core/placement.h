// Placement-policy interface (paper Section 4.2).
//
// Placement maps every replica of a plan onto a server, subject to the
// storage capacity (Eq. 4) and the one-replica-per-server-per-video rule
// (Eq. 6), minimizing the load-imbalance degree of the expected loads.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/core/layout.h"
#include "src/core/replication.h"

namespace vodrep {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Places every replica of `plan`.  `popularity` supplies the per-replica
  /// weights w_i = p_i / r_i the policy balances; `capacity_per_server` is
  /// the storage capacity in replica slots.  Throws InfeasibleError when no
  /// feasible layout exists (e.g. total replicas exceed N * capacity).
  [[nodiscard]] virtual Layout place(const ReplicationPlan& plan,
                                     const std::vector<double>& popularity,
                                     std::size_t num_servers,
                                     std::size_t capacity_per_server) const = 0;
};

/// Validates common placement preconditions; shared by implementations.
void check_placement_inputs(const ReplicationPlan& plan,
                            const std::vector<double>& popularity,
                            std::size_t num_servers,
                            std::size_t capacity_per_server);

/// The replica-group ordering both placement algorithms start from: video
/// indices sorted by per-replica weight w_i = p_i / r_i, non-increasing,
/// ties broken by video index.  (The paper arranges "all replicas of each
/// video in a corresponding group" and sorts the groups by weight.)
[[nodiscard]] std::vector<std::size_t> videos_by_weight(
    const ReplicationPlan& plan, const std::vector<double>& popularity);

}  // namespace vodrep
