#include "src/core/layout_io.h"

#include <istream>
#include <ostream>
#include <string>

#include "src/util/error.h"

namespace vodrep {

void save_placement(std::ostream& os, const PlacementFile& placement) {
  // Structural validation only (distinct in-range servers, >= 1 replica);
  // storage capacity is a property of the target cluster, not of the file.
  placement.layout.validate(placement.layout.implied_plan(),
                            placement.num_servers,
                            placement.layout.num_videos() *
                                placement.num_servers);
  os << "vodrep-layout " << placement.layout.num_videos() << " "
     << placement.num_servers << "\n";
  for (std::size_t video = 0; video < placement.layout.num_videos(); ++video) {
    const auto& servers = placement.layout.assignment[video];
    require(!servers.empty(), "save_placement: video has no replica");
    os << video << " " << servers.size();
    for (std::size_t server : servers) os << " " << server;
    os << "\n";
  }
}

PlacementFile load_placement(std::istream& is) {
  std::string magic;
  std::size_t num_videos = 0;
  PlacementFile placement;
  is >> magic >> num_videos >> placement.num_servers;
  require(static_cast<bool>(is) && magic == "vodrep-layout",
          "load_placement: missing vodrep-layout header");
  placement.layout.assignment.resize(num_videos);
  for (std::size_t i = 0; i < num_videos; ++i) {
    std::size_t video = 0;
    std::size_t replicas = 0;
    is >> video >> replicas;
    require(static_cast<bool>(is) && video < num_videos,
            "load_placement: bad video record");
    require(replicas >= 1 && replicas <= placement.num_servers,
            "load_placement: replica count out of range");
    auto& servers = placement.layout.assignment[video];
    require(servers.empty(), "load_placement: duplicate video record");
    servers.reserve(replicas);
    for (std::size_t k = 0; k < replicas; ++k) {
      std::size_t server = 0;
      is >> server;
      require(static_cast<bool>(is), "load_placement: truncated record");
      servers.push_back(server);
    }
  }
  placement.layout.validate(placement.layout.implied_plan(),
                            placement.num_servers,
                            /*capacity_per_server=*/num_videos *
                                placement.num_servers);
  return placement;
}

}  // namespace vodrep
