#include "src/core/layout_io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/util/error.h"

namespace vodrep {

void save_placement(std::ostream& os, const PlacementFile& placement) {
  // Structural validation only (distinct in-range servers, >= 1 replica);
  // storage capacity is a property of the target cluster, not of the file.
  placement.layout.validate(placement.layout.implied_plan(),
                            placement.num_servers,
                            placement.layout.num_videos() *
                                placement.num_servers);
  os << "vodrep-layout " << placement.layout.num_videos() << " "
     << placement.num_servers << "\n";
  for (std::size_t video = 0; video < placement.layout.num_videos(); ++video) {
    const auto& servers = placement.layout.assignment[video];
    require(!servers.empty(), "save_placement: video has no replica");
    os << video << " " << servers.size();
    for (std::size_t server : servers) os << " " << server;
    os << "\n";
  }
}

PlacementFile load_placement(std::istream& is) {
  std::string magic;
  std::size_t num_videos = 0;
  PlacementFile placement;
  is >> magic >> num_videos >> placement.num_servers;
  require(static_cast<bool>(is) && magic == "vodrep-layout",
          "load_placement: missing vodrep-layout header");
  // num_servers drives O(N) allocations downstream (the auditor's per-server
  // tables), so it must be bounded before anything trusts it: a forged
  // header — "-1" wraps to SIZE_MAX when read into size_t — would otherwise
  // turn validation into a multi-exabyte allocation (found by
  // fuzz_layout_io).  The cap is 1024x the ROADMAP's N=1024 north star.
  constexpr std::size_t kMaxNumServers = std::size_t{1} << 20;
  require(placement.num_servers <= kMaxNumServers,
          "load_placement: num_servers out of range");
  // Records are buffered as read and the assignment table materialized only
  // afterwards, so allocation stays proportional to the bytes actually in
  // the stream: a forged header claiming 10^18 videos fails on its missing
  // first record instead of demanding the full table up front (the
  // fuzz_layout_io target runs this parser under ASan, where a
  // header-driven pre-allocation is a crash, not a clean reject).
  constexpr std::size_t kReserveCap = 4096;
  std::vector<std::pair<std::size_t, std::vector<std::size_t>>> records;
  records.reserve(std::min(num_videos, kReserveCap));
  for (std::size_t i = 0; i < num_videos; ++i) {
    std::size_t video = 0;
    std::size_t replicas = 0;
    is >> video >> replicas;
    require(static_cast<bool>(is) && video < num_videos,
            "load_placement: bad video record");
    require(replicas >= 1 && replicas <= placement.num_servers,
            "load_placement: replica count out of range");
    std::vector<std::size_t> servers;
    servers.reserve(std::min(replicas, kReserveCap));
    for (std::size_t k = 0; k < replicas; ++k) {
      std::size_t server = 0;
      is >> server;
      require(static_cast<bool>(is), "load_placement: truncated record");
      servers.push_back(server);
    }
    records.emplace_back(video, std::move(servers));
  }
  placement.layout.assignment.resize(num_videos);
  for (auto& [video, servers] : records) {
    auto& slot = placement.layout.assignment[video];
    require(slot.empty(), "load_placement: duplicate video record");
    slot = std::move(servers);
  }
  placement.layout.validate(placement.layout.implied_plan(),
                            placement.num_servers,
                            /*capacity_per_server=*/num_videos *
                                placement.num_servers);
  return placement;
}

}  // namespace vodrep
