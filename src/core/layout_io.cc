#include "src/core/layout_io.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/util/error.h"

namespace vodrep {
namespace {

// num_servers drives O(N) allocations downstream (the auditor's per-server
// tables), so it must be bounded before anything trusts it: a forged
// header — "-1" wraps to SIZE_MAX when read into size_t — would otherwise
// turn validation into a multi-exabyte allocation (found by
// fuzz_layout_io).  The cap is 1024x the ROADMAP's N=1024 north star.
constexpr std::size_t kMaxNumServers = std::size_t{1} << 20;
// Records are buffered as read and tables materialized only afterwards, so
// allocation stays proportional to the bytes actually in the stream; this
// caps the speculative reserve for forged counts.
constexpr std::size_t kReserveCap = 4096;
// Per-video variant ladders are the v2 parser's second header-driven
// allocation; bound them the same way the server count is bounded.
constexpr std::size_t kMaxVariants = 64;

void check_asset_metadata(const PlacementFile& placement) {
  const std::size_t m = placement.layout.num_videos();
  require(placement.prefix_fraction.size() == m &&
              placement.variant_bitrates_bps.size() == m,
          "save_placement: asset metadata size mismatch");
  for (std::size_t i = 0; i < m; ++i) {
    const double f = placement.prefix_fraction[i];
    require(std::isfinite(f) && f > 0.0 && f <= 1.0,
            "save_placement: prefix fraction out of (0, 1]");
    const std::vector<double>& rates = placement.variant_bitrates_bps[i];
    require(!rates.empty() && rates.size() <= kMaxVariants,
            "save_placement: variant count out of range");
    double prev = 0.0;
    for (double rate : rates) {
      require(std::isfinite(rate) && rate > prev,
              "save_placement: variant rates must be positive and ascending");
      prev = rate;
    }
  }
}

}  // namespace

void save_placement(std::ostream& os, const PlacementFile& placement) {
  // Structural validation only (distinct in-range servers, >= 1 replica);
  // storage capacity is a property of the target cluster, not of the file.
  placement.layout.validate(placement.layout.implied_plan(),
                            placement.num_servers,
                            placement.layout.num_videos() *
                                placement.num_servers);
  if (!placement.has_asset_metadata()) {
    require(placement.variant_bitrates_bps.empty(),
            "save_placement: variant ladder without prefix fractions");
    os << "vodrep-layout " << placement.layout.num_videos() << " "
       << placement.num_servers << "\n";
    for (std::size_t video = 0; video < placement.layout.num_videos();
         ++video) {
      const auto& servers = placement.layout.assignment[video];
      require(!servers.empty(), "save_placement: video has no replica");
      os << video << " " << servers.size();
      for (std::size_t server : servers) os << " " << server;
      os << "\n";
    }
    return;
  }

  check_asset_metadata(placement);
  // max_digits10 makes the text round trip bit-exact for every finite
  // double, which the fuzz oracle's save/load check relies on.
  const std::streamsize saved_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "vodrep-layout-v2 " << placement.layout.num_videos() << " "
     << placement.num_servers << "\n";
  for (std::size_t video = 0; video < placement.layout.num_videos(); ++video) {
    const auto& servers = placement.layout.assignment[video];
    require(!servers.empty(), "save_placement: video has no replica");
    const std::vector<double>& rates = placement.variant_bitrates_bps[video];
    os << video << " " << placement.prefix_fraction[video] << " "
       << rates.size();
    for (double rate : rates) os << " " << rate;
    os << " " << servers.size();
    for (std::size_t server : servers) os << " " << server;
    os << "\n";
  }
  os.precision(saved_precision);
}

PlacementFile load_placement(std::istream& is) {
  std::string magic;
  std::size_t num_videos = 0;
  PlacementFile placement;
  is >> magic >> num_videos >> placement.num_servers;
  const bool v2 = magic == "vodrep-layout-v2";
  require(static_cast<bool>(is) && (magic == "vodrep-layout" || v2),
          "load_placement: missing vodrep-layout header");
  require(placement.num_servers <= kMaxNumServers,
          "load_placement: num_servers out of range");
  // Records are buffered as read and the tables materialized only
  // afterwards, so allocation stays proportional to the bytes actually in
  // the stream: a forged header claiming 10^18 videos fails on its missing
  // first record instead of demanding the full table up front (the
  // fuzz_layout_io target runs this parser under ASan, where a
  // header-driven pre-allocation is a crash, not a clean reject).
  struct Record {
    std::size_t video = 0;
    double fraction = 1.0;
    std::vector<double> rates;
    std::vector<std::size_t> servers;
  };
  std::vector<Record> records;
  records.reserve(std::min(num_videos, kReserveCap));
  for (std::size_t i = 0; i < num_videos; ++i) {
    Record record;
    is >> record.video;
    require(static_cast<bool>(is) && record.video < num_videos,
            "load_placement: bad video record");
    if (v2) {
      std::size_t num_variants = 0;
      is >> record.fraction >> num_variants;
      require(static_cast<bool>(is), "load_placement: truncated v2 record");
      require(std::isfinite(record.fraction) && record.fraction > 0.0 &&
                  record.fraction <= 1.0,
              "load_placement: prefix fraction out of (0, 1]");
      // Like the num_servers cap: "-1" wraps to SIZE_MAX, and the variant
      // list is a header-driven allocation that must stay bounded.
      require(num_variants >= 1 && num_variants <= kMaxVariants,
              "load_placement: variant count out of range");
      record.rates.reserve(num_variants);
      double prev_rate = 0.0;
      for (std::size_t v = 0; v < num_variants; ++v) {
        double rate = 0.0;
        is >> rate;
        require(static_cast<bool>(is) && std::isfinite(rate) &&
                    rate > prev_rate,
                "load_placement: variant rates must be positive, ascending");
        record.rates.push_back(rate);
        prev_rate = rate;
      }
    }
    std::size_t replicas = 0;
    is >> replicas;
    require(static_cast<bool>(is), "load_placement: bad video record");
    require(replicas >= 1 && replicas <= placement.num_servers,
            "load_placement: replica count out of range");
    record.servers.reserve(std::min(replicas, kReserveCap));
    for (std::size_t k = 0; k < replicas; ++k) {
      std::size_t server = 0;
      is >> server;
      require(static_cast<bool>(is), "load_placement: truncated record");
      record.servers.push_back(server);
    }
    records.push_back(std::move(record));
  }
  placement.layout.assignment.resize(num_videos);
  if (v2) {
    placement.prefix_fraction.assign(num_videos, 1.0);
    placement.variant_bitrates_bps.resize(num_videos);
  }
  for (auto& record : records) {
    auto& slot = placement.layout.assignment[record.video];
    require(slot.empty(), "load_placement: duplicate video record");
    slot = std::move(record.servers);
    if (v2) {
      placement.prefix_fraction[record.video] = record.fraction;
      placement.variant_bitrates_bps[record.video] = std::move(record.rates);
    }
  }
  placement.layout.validate(placement.layout.implied_plan(),
                            placement.num_servers,
                            /*capacity_per_server=*/num_videos *
                                placement.num_servers);
  return placement;
}

}  // namespace vodrep
