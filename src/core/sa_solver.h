// Simulated-annealing solver for the scalable-bit-rate replication and
// placement problem (paper Section 4.3).
//
// The three problem-specific decisions the paper plugs into the parsa
// library are implemented here against src/anneal:
//   * cost function: the negated Eq. 1 objective (the engine minimizes),
//     plus a penalty proportional to any irreparable bandwidth overflow —
//     the paper notes Eq. 5 can be violated when the offered load exceeds
//     the cluster's total outgoing bandwidth;
//   * initial solution: every video at the lowest ladder rate, one replica,
//     placed round-robin;
//   * neighborhood: pick a random server, then either raise the encoding
//     bit rate of one video hosted there or add a replica of a new video to
//     it; if the move overflows the server's storage or bandwidth, repair by
//     lowering the bit rate of (or evicting) its lowest-rate videos.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/anneal/annealer.h"
#include "src/core/incremental_state.h"
#include "src/core/scalable.h"

namespace vodrep {

struct SaSolverOptions {
  AnnealOptions anneal;
  /// Annealing chains.  With chains > 1 solve_scalable runs parallel
  /// tempering by default — coupled chains at staggered temperatures with
  /// periodic replica exchanges every anneal.swap_period steps (see
  /// src/anneal/parallel_tempering.h) — on `pool` when provided.  Output is
  /// deterministic in the seed regardless of thread count.
  std::size_t chains = 1;
  /// Run chains fully independently (parsa-style best-of-K racing) instead
  /// of coupling them through replica exchanges.
  bool independent_chains = false;
  /// Cost penalty per unit of relative bandwidth overflow (sum over servers
  /// of overflow/B).  Large enough that infeasibility always dominates any
  /// objective gain at the paper's scales.
  double bandwidth_penalty = 100.0;
  /// Probability that a neighborhood move tries a bit-rate increase first
  /// (otherwise it tries to add a replica first; each falls back to the
  /// other when its preconditions fail).
  double increase_rate_probability = 0.5;
  /// Probability of proposing an explicit shrink move (lower one hosted
  /// video's rate or drop one of its replicas) instead of a growth move.
  /// The paper's stated neighborhood only grows and repairs; that makes
  /// "storage full" an absorbing plateau — every raise is undone by the
  /// repair — and the chain stops improving far below what the budget
  /// admits (see EXPERIMENTS.md E7).  Explicit shrink moves let the
  /// annealer re-pack storage across servers.  0 reproduces the paper's
  /// neighborhood verbatim.
  double shrink_probability = 0.2;
  /// Probability of proposing a prefix-fraction move instead of the regular
  /// neighborhood (segment/prefix content model): nudge one hosted video's
  /// stored fraction by +-prefix_fraction_step, clamped to
  /// [problem.min_prefix_fraction, 1].  0 (the default) disables the knob
  /// and — checked before any RNG draw — leaves the random stream, and thus
  /// every seeded result, bit-identical to the pre-asset solver.
  double prefix_fraction_probability = 0.0;
  /// Step size of one prefix-fraction move, in fraction units.
  double prefix_fraction_step = 0.25;
};

struct SaSolverResult {
  ScalableSolution solution;
  double objective = 0.0;        ///< Eq. 1 value of the returned solution
  bool feasible = false;         ///< hard-feasible (Eqs. 4-7) at return
  AnnealResult<ScalableSolution> anneal;  ///< engine instrumentation
};

/// Mutable per-chain working set for the in-place annealing path: the live
/// incremental state plus the transaction bookkeeping of the tentatively
/// applied move and reusable candidate buffers (no per-move allocation).
/// `cost_before` caches the cost of the committed configuration across
/// moves — make_scratch seeds it and commit() refreshes it from the move's
/// own delta evaluation, so the engine pays exactly one cost evaluation per
/// proposed move instead of two.
struct SaScratch {
  IncrementalState state;
  IncrementalState::Checkpoint mark = 0;
  double cost_before = 0.0;
  /// The tentative move's cost, written by delta_cost() (const in the
  /// engine's concept, hence mutable) and promoted to cost_before on commit.
  mutable double cost_after = 0.0;
  /// Deferred best tracking (DeferredBestAnnealProblem): the journal is kept
  /// alive across commits, best_mark points at the best configuration seen
  /// by this walker, and extract_best() rolls back to it once at the end —
  /// so a new best costs O(1) instead of an O(M) solution snapshot.
  /// commit() trims the journal prefix behind best_mark when it grows past
  /// a threshold, keeping memory proportional to the since-best tail.
  IncrementalState::Checkpoint best_mark = 0;
  double best_cost = 0.0;
  std::vector<std::uint32_t> candidates;
};

/// The AnnealProblem adapter; exposed so tests can exercise the neighborhood
/// and repair logic directly.  Implements both the classic copy-based
/// concept (initial/cost/neighbor) and the in-place move API
/// (make_scratch/propose/delta_cost/commit/revert/extract) the engine
/// prefers — see InPlaceAnnealProblem in src/anneal/annealer.h.
class ScalableSaProblem {
 public:
  using State = ScalableSolution;
  using Scratch = SaScratch;

  ScalableSaProblem(const ScalableProblem& problem,
                    const SaSolverOptions& options);

  [[nodiscard]] State initial(Rng& rng) const;
  [[nodiscard]] double cost(const State& state) const;
  [[nodiscard]] State neighbor(const State& state, Rng& rng) const;

  /// Brings `state` back within the storage constraint (hard) and as far
  /// within the bandwidth constraint as possible (soft), touching only
  /// videos hosted on over-committed servers.  Returns false when the
  /// storage constraint could not be met (caller should discard the move).
  [[nodiscard]] bool repair(State& state) const;

  // In-place move API.  One move is a neighborhood action plus any repair
  // actions it triggered, journaled as a unit: propose() tentatively applies
  // it to scratch.state and returns false for a no-op (saturated server or
  // irreparable overflow — nothing applied); delta_cost() is the cost change
  // of the applied move; commit()/revert() accept or undo it.
  [[nodiscard]] Scratch make_scratch(State state) const;
  [[nodiscard]] bool propose(Scratch& scratch, Rng& rng) const;
  [[nodiscard]] double delta_cost(const Scratch& scratch) const;
  void commit(Scratch& scratch) const;
  void revert(Scratch& scratch) const;
  [[nodiscard]] State extract(const Scratch& scratch) const;
  /// DeferredBestAnnealProblem hook: rolls the scratch back to the best
  /// configuration its journal has seen and materializes it.  Consumes the
  /// scratch (call once, at the end of a chain).
  [[nodiscard]] State extract_best(Scratch& scratch) const;

  /// Evaluation-path instrumentation, summed across every chain driving this
  /// problem: full cost() recomputes, delta_cost() incremental evaluations,
  /// and repair invocations.  Counted only while obs::metrics_enabled(), so
  /// the hot path pays one relaxed load when metrics are off.
  struct EvalCounts {
    std::uint64_t full_evaluations = 0;
    std::uint64_t delta_evaluations = 0;
    std::uint64_t repairs = 0;
  };
  [[nodiscard]] EvalCounts eval_counts() const;

 private:
  [[nodiscard]] double incremental_cost(const IncrementalState& inc) const;
  /// The neighborhood action (no repair); false when the server is saturated.
  [[nodiscard]] bool propose_move(IncrementalState& inc,
                                  std::vector<std::uint32_t>& candidates,
                                  Rng& rng) const;
  /// repair() on the live incremental state; false on irreparable storage
  /// overflow (caller must roll back).
  [[nodiscard]] bool repair_incremental(IncrementalState& inc) const;

  const ScalableProblem& problem_;
  SaSolverOptions options_;
  // Shared across chains; relaxed atomics (counts, no ordering needed).
  // Note these make the problem non-copyable, which solve_scalable and the
  // benches never need.
  mutable std::atomic<std::uint64_t> full_evaluations_{0};
  mutable std::atomic<std::uint64_t> delta_evaluations_{0};
  mutable std::atomic<std::uint64_t> repairs_{0};
};

/// Runs the annealer with `seed` and returns the best configuration found.
/// With options.chains > 1 the chains run parallel tempering (or
/// independently when options.independent_chains is set) on `pool` when
/// given; output is deterministic in `seed` regardless of thread count.
[[nodiscard]] SaSolverResult solve_scalable(const ScalableProblem& problem,
                                            std::uint64_t seed,
                                            const SaSolverOptions& options = {},
                                            ThreadPool* pool = nullptr);

}  // namespace vodrep
