// Simulated-annealing solver for the scalable-bit-rate replication and
// placement problem (paper Section 4.3).
//
// The three problem-specific decisions the paper plugs into the parsa
// library are implemented here against src/anneal:
//   * cost function: the negated Eq. 1 objective (the engine minimizes),
//     plus a penalty proportional to any irreparable bandwidth overflow —
//     the paper notes Eq. 5 can be violated when the offered load exceeds
//     the cluster's total outgoing bandwidth;
//   * initial solution: every video at the lowest ladder rate, one replica,
//     placed round-robin;
//   * neighborhood: pick a random server, then either raise the encoding
//     bit rate of one video hosted there or add a replica of a new video to
//     it; if the move overflows the server's storage or bandwidth, repair by
//     lowering the bit rate of (or evicting) its lowest-rate videos.
#pragma once

#include <cstddef>

#include "src/anneal/annealer.h"
#include "src/core/scalable.h"

namespace vodrep {

struct SaSolverOptions {
  AnnealOptions anneal;
  /// Independent annealing chains (parsa-style parallel SA); the best final
  /// solution wins.  Chains run on `pool` when provided to solve_scalable.
  std::size_t chains = 1;
  /// Cost penalty per unit of relative bandwidth overflow (sum over servers
  /// of overflow/B).  Large enough that infeasibility always dominates any
  /// objective gain at the paper's scales.
  double bandwidth_penalty = 100.0;
  /// Probability that a neighborhood move tries a bit-rate increase first
  /// (otherwise it tries to add a replica first; each falls back to the
  /// other when its preconditions fail).
  double increase_rate_probability = 0.5;
  /// Probability of proposing an explicit shrink move (lower one hosted
  /// video's rate or drop one of its replicas) instead of a growth move.
  /// The paper's stated neighborhood only grows and repairs; that makes
  /// "storage full" an absorbing plateau — every raise is undone by the
  /// repair — and the chain stops improving far below what the budget
  /// admits (see EXPERIMENTS.md E7).  Explicit shrink moves let the
  /// annealer re-pack storage across servers.  0 reproduces the paper's
  /// neighborhood verbatim.
  double shrink_probability = 0.2;
};

struct SaSolverResult {
  ScalableSolution solution;
  double objective = 0.0;        ///< Eq. 1 value of the returned solution
  bool feasible = false;         ///< hard-feasible (Eqs. 4-7) at return
  AnnealResult<ScalableSolution> anneal;  ///< engine instrumentation
};

/// The AnnealProblem adapter; exposed so tests can exercise the neighborhood
/// and repair logic directly.
class ScalableSaProblem {
 public:
  using State = ScalableSolution;

  ScalableSaProblem(const ScalableProblem& problem,
                    const SaSolverOptions& options);

  [[nodiscard]] State initial(Rng& rng) const;
  [[nodiscard]] double cost(const State& state) const;
  [[nodiscard]] State neighbor(const State& state, Rng& rng) const;

  /// Brings `state` back within the storage constraint (hard) and as far
  /// within the bandwidth constraint as possible (soft), touching only
  /// videos hosted on over-committed servers.  Returns false when the
  /// storage constraint could not be met (caller should discard the move).
  [[nodiscard]] bool repair(State& state) const;

 private:
  const ScalableProblem& problem_;
  SaSolverOptions options_;
};

/// Runs the annealer with `seed` and returns the best configuration found.
/// With options.chains > 1 the chains run independently (on `pool` when
/// given) and the best result wins; output is deterministic in `seed`
/// either way.
[[nodiscard]] SaSolverResult solve_scalable(const ScalableProblem& problem,
                                            std::uint64_t seed,
                                            const SaSolverOptions& options = {},
                                            ThreadPool* pool = nullptr);

}  // namespace vodrep
