// Text serialization of placements (replication plan + layout).
//
// Operational workflows need the computed placement to leave the process:
// a planner writes it, the fleet tooling reads it, tomorrow's planner diffs
// against it (see online/migration.h).  The format is line-oriented and
// versioned:
//
//   vodrep-layout <num_videos> <num_servers>
//   <video_id> <replicas> <server_1> ... <server_r>
//   ...
#pragma once

#include <iosfwd>

#include "src/core/layout.h"
#include "src/core/replication.h"

namespace vodrep {

/// A placement as it travels between tools.
struct PlacementFile {
  std::size_t num_servers = 0;
  Layout layout;

  /// The replication plan is implied: r_i = layout.assignment[i].size().
  [[nodiscard]] ReplicationPlan plan() const { return layout.implied_plan(); }
};

/// Writes the placement; throws InvalidArgumentError if the layout is
/// internally inconsistent with `num_servers`.
void save_placement(std::ostream& os, const PlacementFile& placement);

/// Parses the save_placement format; validates distinct, in-range servers.
/// Throws InvalidArgumentError on malformed input.
[[nodiscard]] PlacementFile load_placement(std::istream& is);

}  // namespace vodrep
