// Text serialization of placements (replication plan + layout).
//
// Operational workflows need the computed placement to leave the process:
// a planner writes it, the fleet tooling reads it, tomorrow's planner diffs
// against it (see online/migration.h).  The format is line-oriented and
// versioned.  v1 carries whole-file replicas:
//
//   vodrep-layout <num_videos> <num_servers>
//   <video_id> <replicas> <server_1> ... <server_r>
//   ...
//
// v2 adds the segment/prefix asset metadata — a per-video stored prefix
// fraction in (0, 1] and a strictly-ascending bitrate-variant ladder:
//
//   vodrep-layout-v2 <num_videos> <num_servers>
//   <video_id> <prefix_fraction> <num_variants> <rate_bps_1> ...
//       <replicas> <server_1> ... <server_r>
//   ...
//
// load_placement auto-detects the version by magic; save_placement emits v1
// (byte-identical to the pre-asset writer) when the file carries no prefix
// metadata, v2 otherwise.  Doubles are written with max_digits10 precision
// so a save/load round trip is bit-exact.
#pragma once

#include <iosfwd>

#include "src/core/layout.h"
#include "src/core/replication.h"

namespace vodrep {

/// A placement as it travels between tools.
struct PlacementFile {
  std::size_t num_servers = 0;
  Layout layout;
  /// v2 asset metadata; both empty for v1 files (whole-file replicas, one
  /// implicit variant).  When present, each has one entry per video:
  /// a stored prefix fraction in (0, 1] and a non-empty strictly-ascending
  /// positive bitrate ladder.
  std::vector<double> prefix_fraction;
  std::vector<std::vector<double>> variant_bitrates_bps;

  /// The replication plan is implied: r_i = layout.assignment[i].size().
  [[nodiscard]] ReplicationPlan plan() const { return layout.implied_plan(); }
  /// True when the file carries v2 prefix/variant metadata.
  [[nodiscard]] bool has_asset_metadata() const {
    return !prefix_fraction.empty();
  }
};

/// Writes the placement (v1 without asset metadata, v2 with); throws
/// InvalidArgumentError if the layout is internally inconsistent with
/// `num_servers` or the asset metadata is malformed.
void save_placement(std::ostream& os, const PlacementFile& placement);

/// Parses the save_placement formats (v1 or v2, by magic); validates
/// distinct, in-range servers and — for v2 — fraction ranges and variant
/// ladders.  Throws InvalidArgumentError on malformed input.
[[nodiscard]] PlacementFile load_placement(std::istream& is);

}  // namespace vodrep
