// Strongly-suggestive unit helpers for the quantities the paper works in:
// bit rates (Mb/s), storage (GB), time (minutes/seconds) and arrival rates
// (requests/minute).  All internal computation uses double seconds, double
// bits-per-second and double bytes; these helpers exist so call sites read
// like the paper ("4 Mb/s", "90 min", "1.8 Gb/s") and conversions live in
// exactly one place.
#pragma once

namespace vodrep::units {

// --- bit rates ----------------------------------------------------------
/// Megabits per second -> bits per second.
constexpr double mbps(double v) { return v * 1e6; }
/// Gigabits per second -> bits per second.
constexpr double gbps(double v) { return v * 1e9; }
/// Bits per second -> megabits per second (for reporting).
constexpr double to_mbps(double bits_per_sec) { return bits_per_sec / 1e6; }

// --- storage ------------------------------------------------------------
/// Gigabytes -> bytes.  The paper uses decimal GB (2.7 GB per 90-min 4 Mb/s
/// video = 90*60*4e6/8 bytes), so we do too.
constexpr double gigabytes(double v) { return v * 1e9; }
/// Bytes -> gigabytes (for reporting).
constexpr double to_gigabytes(double bytes) { return bytes / 1e9; }

// --- time ---------------------------------------------------------------
/// Minutes -> seconds.
constexpr double minutes(double v) { return v * 60.0; }
/// Seconds -> minutes (for reporting).
constexpr double to_minutes(double seconds) { return seconds / 60.0; }

// --- rates --------------------------------------------------------------
/// Requests per minute -> requests per second.
constexpr double per_minute(double v) { return v / 60.0; }
/// Requests per second -> requests per minute (for reporting).
constexpr double to_per_minute(double per_sec) { return per_sec * 60.0; }

/// Storage occupied by a constant-bit-rate video: duration [s] * rate [b/s],
/// expressed in bytes.
constexpr double video_bytes(double duration_sec, double bitrate_bps) {
  return duration_sec * bitrate_bps / 8.0;
}

}  // namespace vodrep::units
