// Streaming and batch descriptive statistics used by the simulator metrics
// and the experiment harness (means, deviations, confidence intervals,
// quantiles, time-weighted averages).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace vodrep {

/// Numerically stable streaming accumulator (Welford) for count, mean,
/// variance, min and max of a sequence of observations.
class OnlineStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two observations.
  [[nodiscard]] double variance() const;
  /// Sample standard deviation.
  [[nodiscard]] double stddev() const;
  /// Smallest observation; +inf when empty.
  [[nodiscard]] double min() const { return min_; }
  /// Largest observation; -inf when empty.
  [[nodiscard]] double max() const { return max_; }

  /// Half-width of the (approximately) 95% confidence interval of the mean,
  /// using the normal critical value 1.96.  0 when fewer than two samples.
  [[nodiscard]] double ci95_halfwidth() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted mean of a piecewise-constant signal, e.g. instantaneous
/// server load between events.  Feed (value, duration) segments.
class TimeWeightedMean {
 public:
  /// Accounts for the signal holding `value` for `duration` time units.
  /// Non-positive durations are ignored.
  void add(double value, double duration);

  [[nodiscard]] double total_time() const { return total_time_; }
  /// Time-average; 0 when no time has been accumulated.
  [[nodiscard]] double mean() const;

 private:
  double weighted_sum_ = 0.0;
  double total_time_ = 0.0;
};

/// Linear-interpolation quantile (type 7, the numpy/R default) of `values`.
/// `q` in [0, 1].  The input is copied and sorted.  Throws on empty input.
[[nodiscard]] double quantile(std::vector<double> values, double q);

/// Arithmetic mean of `values`; throws on empty input.
[[nodiscard]] double mean_of(const std::vector<double>& values);

/// Sample standard deviation of `values` (n-1); 0 when size < 2.
[[nodiscard]] double stddev_of(const std::vector<double>& values);

}  // namespace vodrep
