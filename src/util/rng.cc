#include "src/util/rng.h"

#include <cmath>

#include "src/util/error.h"

namespace vodrep {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 of any seed
  // cannot produce four zero words, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng Rng::split(std::uint64_t stream) const {
  // Mix the current state with the stream id through splitmix64 so children
  // with different ids start from unrelated states.
  std::uint64_t sm = state_[0] ^ rotl(state_[3], 17) ^ (stream * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(sm));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  require(n > 0, "Rng::uniform_index: n must be positive");
  // Lemire's multiply-and-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double rate) {
  require(rate > 0.0, "Rng::exponential: rate must be positive");
  // -log(1 - U) with U in [0,1); 1-U is in (0,1] so the log is finite.
  return -std::log1p(-uniform()) / rate;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::poisson(double mean) {
  require(mean >= 0.0, "Rng::poisson: mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion by multiplication of uniforms.
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // PTRS (Hörmann 1993) transformed rejection for large means.
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  const double log_mean = std::log(mean);
  for (;;) {
    const double u = uniform() - 0.5;
    const double v = uniform();
    const double us = 0.5 - std::fabs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    if (k < 0.0 || (us < 0.013 && v > us)) continue;
    if (std::log(v) + std::log(inv_alpha) - std::log(a / (us * us) + b) <=
        k * log_mean - mean - std::lgamma(k + 1.0)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

}  // namespace vodrep
