#include "src/util/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "src/util/error.h"

namespace vodrep {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      // Explicit wait loop (not the predicate overload): the analysis then
      // sees every guarded read under the held lock.
      while (!stopping_ && tasks_.empty()) cv_.wait(lock);
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {

// Shared between the caller and the pool workers executing one parallel_for.
// Workers hold a shared_ptr, so the state outlives the call even if a worker
// dequeues its task after the caller has already observed completion.
struct ParallelForState {
  explicit ParallelForState(std::size_t n, std::function<void(std::size_t)> f)
      : count(n), body(std::move(f)) {}

  const std::size_t count;
  const std::function<void(std::size_t)> body;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  Mutex error_mutex;
  std::exception_ptr first_error VODREP_GUARDED_BY(error_mutex);
  Mutex done_mutex;
  std::condition_variable_any done_cv;

  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        MutexLock lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  auto state = std::make_shared<ParallelForState>(count, body);

  // One chunked task per worker; the calling thread participates too, so the
  // call completes even if every worker is busy with other tasks.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    enqueue([state] { state->drain(); });
  }
  state->drain();

  {
    UniqueLock lock(state->done_mutex);
    while (state->done.load(std::memory_order_acquire) != count) {
      state->done_cv.wait(lock);
    }
  }
  std::exception_ptr first_error;
  {
    MutexLock lock(state->error_mutex);
    first_error = state->first_error;
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vodrep
