// Clang thread-safety capability annotations, plus the annotated mutex and
// lock types the library's shared state is expressed with.
//
// The repository's headline concurrency guarantee — bit-identical solver and
// simulator output at any thread-pool size — used to be enforced only
// dynamically (tests + tsan).  These macros make the locking contracts
// machine-checked at *compile time*: every mutex-protected member is declared
// VODREP_GUARDED_BY(its mutex), every function that expects a lock held says
// so with VODREP_REQUIRES, and the clang CI lanes build with
// -Werror=thread-safety, so an unguarded access is a build break rather than
// a rare flaky test.  On non-clang compilers (and on clang versions without
// the attributes) every macro expands to nothing.
//
// The analysis only understands lock types that are themselves annotated —
// libstdc++'s std::mutex is not — so the library wraps std::mutex in
// vodrep::Mutex (a capability) and locks it through vodrep::MutexLock /
// vodrep::UniqueLock (scoped capabilities).  UniqueLock additionally models
// BasicLockable so it can sit under std::condition_variable_any.
//
// Annotation conventions (DESIGN.md §8):
//   * members written under a mutex: VODREP_GUARDED_BY(mutex_);
//   * private helpers called with the lock held: VODREP_REQUIRES(mutex_);
//   * public entry points that take the lock themselves: VODREP_EXCLUDES
//     when re-entry would deadlock;
//   * atomics are not annotated — their safety is carried by the type.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define VODREP_HAS_THREAD_ATTRIBUTE(x) __has_attribute(x)
#else
#define VODREP_HAS_THREAD_ATTRIBUTE(x) 0
#endif

#if VODREP_HAS_THREAD_ATTRIBUTE(guarded_by)
#define VODREP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define VODREP_THREAD_ANNOTATION_(x)
#endif

/// Declares a type to be a capability (lockable) the analysis can track.
#define VODREP_CAPABILITY(name) VODREP_THREAD_ANNOTATION_(capability(name))

/// Declares a RAII type whose lifetime acquires/releases a capability.
#define VODREP_SCOPED_CAPABILITY VODREP_THREAD_ANNOTATION_(scoped_lockable)

/// Member data that must only be accessed while `x` is held.
#define VODREP_GUARDED_BY(x) VODREP_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* must only be accessed while `x` is held.
#define VODREP_PT_GUARDED_BY(x) VODREP_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that may only be called with the listed capabilities held.
#define VODREP_REQUIRES(...) \
  VODREP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities and returns holding them.
#define VODREP_ACQUIRE(...) \
  VODREP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities.
#define VODREP_RELEASE(...) \
  VODREP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `result`.
#define VODREP_TRY_ACQUIRE(result, ...) \
  VODREP_THREAD_ANNOTATION_(try_acquire_capability(result, __VA_ARGS__))

/// Function that must be called *without* the listed capabilities held
/// (it takes them itself; calling with them held would deadlock).
#define VODREP_EXCLUDES(...) \
  VODREP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Returns a reference to the capability guarding the returned object.
#define VODREP_RETURN_CAPABILITY(x) VODREP_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables analysis for one function.  Every use must carry a
/// comment stating the invariant that makes the unchecked access safe.
#define VODREP_NO_THREAD_SAFETY_ANALYSIS \
  VODREP_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace vodrep {

/// std::mutex wrapped as an annotated capability.  Same semantics and cost;
/// exists so clang's analysis can associate VODREP_GUARDED_BY members with
/// the lock operations protecting them.
class VODREP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() VODREP_ACQUIRE() { mutex_.lock(); }
  void unlock() VODREP_RELEASE() { mutex_.unlock(); }
  bool try_lock() VODREP_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// Scoped lock of a Mutex (the std::lock_guard shape): acquires on
/// construction, releases on destruction, no unlock in between.
class VODREP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) VODREP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() VODREP_RELEASE() { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

/// Scoped lock that additionally models BasicLockable, so it can be handed
/// to std::condition_variable_any::wait (which unlocks while blocked and
/// re-locks before returning — a net no-op for the capability state at the
/// call site, which is exactly what the analysis assumes of an unannotated
/// call).  Always holds the lock at destruction unless unlock() was the last
/// explicit call.
class VODREP_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) VODREP_ACQUIRE(mutex)
      : mutex_(mutex), held_(true) {
    mutex_.lock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;
  ~UniqueLock() VODREP_RELEASE() {
    if (held_) mutex_.unlock();
  }

  void lock() VODREP_ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }
  void unlock() VODREP_RELEASE() {
    held_ = false;
    mutex_.unlock();
  }

 private:
  Mutex& mutex_;
  bool held_;
};

}  // namespace vodrep
