#include "src/util/logging.h"

#include <iostream>

namespace vodrep {
namespace {

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::ostream* sink) {
  MutexLock lock(mutex_);
  sink_ = sink;
}

void Logger::emit(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(this->level())) return;
  MutexLock lock(mutex_);
  std::ostream& os = sink_ != nullptr ? *sink_ : std::cerr;
  os << "[" << level_tag(level) << "] " << message << "\n";
}

}  // namespace vodrep
