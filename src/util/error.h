// Error types shared across the vodrep library.
//
// The library throws exceptions for programming and configuration errors
// (invalid problem specifications, infeasible layouts, bad CLI input) and
// never for expected runtime conditions such as a rejected request, which are
// reported through metrics instead.
#pragma once

#include <concepts>
#include <stdexcept>
#include <string>
#include <utility>

namespace vodrep {

/// Raised when a problem specification is internally inconsistent
/// (e.g. negative bandwidth, empty video set, skew outside its domain).
class InvalidArgumentError : public std::invalid_argument {
 public:
  explicit InvalidArgumentError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Raised when an algorithm cannot produce a feasible result under the given
/// constraints (e.g. the storage budget cannot hold even one replica per
/// video, or a placement round has no feasible server).
class InfeasibleError : public std::runtime_error {
 public:
  explicit InfeasibleError(const std::string& what)
      : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid(const std::string& what) {
  throw InvalidArgumentError(what);
}
}  // namespace detail

/// Checks a precondition and throws InvalidArgumentError on failure.
/// Used at public API boundaries; internal invariants use the VODREP_DCHECK
/// contracts of src/util/check.h.  The message is a C string so the hot
/// success path constructs nothing.
inline void require(bool condition, const char* what) {
  if (!condition) detail::throw_invalid(what);
}

/// Overload for messages that need formatting (e.g. a file name): pass a
/// callable returning the message, invoked only on the failure path, so
/// callers pay neither concatenation nor allocation when the condition holds.
template <std::invocable MessageFn>
inline void require(bool condition, MessageFn&& message) {
  if (!condition) detail::throw_invalid(std::forward<MessageFn>(message)());
}

}  // namespace vodrep
