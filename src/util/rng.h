// Deterministic, splittable random number generation.
//
// Every stochastic component in vodrep draws from an explicitly seeded Rng so
// that simulations are bit-for-bit reproducible across platforms and across
// thread schedules.  We implement xoshiro256** (Blackman & Vigna) seeded via
// splitmix64 rather than relying on std::mt19937 + std:: distributions, whose
// outputs are not specified identically across standard libraries for the
// floating-point distributions.
//
// The generator satisfies std::uniform_random_bit_generator, so it can also
// feed standard-library facilities when exact reproducibility across
// toolchains is not required.
#pragma once

#include <cstdint>
#include <vector>

namespace vodrep {

/// splitmix64: used to expand a 64-bit seed into xoshiro state and to derive
/// independent child seeds.  Passes BigCrush when used as a generator itself.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** pseudo-random generator with convenience draws for the
/// distributions the simulator needs (uniform, exponential, Poisson counts).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator deterministically from a single 64-bit value.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Re-initializes the state from `seed` via splitmix64 expansion.
  void reseed(std::uint64_t seed);

  /// Derives an independent child generator; child streams for distinct
  /// `stream` values are statistically independent of each other and of the
  /// parent's future output.
  [[nodiscard]] Rng split(std::uint64_t stream) const;

  /// Raw 64 uniform random bits.
  [[nodiscard]] std::uint64_t next_u64();

  // std::uniform_random_bit_generator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Requires n > 0.  Uses Lemire rejection to
  /// avoid modulo bias.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n);

  /// Exponentially distributed variate with the given rate (mean 1/rate).
  /// Requires rate > 0.
  [[nodiscard]] double exponential(double rate);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p);

  /// Poisson-distributed count with the given mean.  Uses inversion for
  /// small means and the PTRS transformed-rejection method for large means.
  [[nodiscard]] std::uint64_t poisson(double mean);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[uniform_index(i)]);
    }
  }

 private:
  std::uint64_t state_[4]{};
};

}  // namespace vodrep
