// Lightweight leveled logging for long-running experiment binaries.
//
// Not a general logging framework: single global sink (stderr by default),
// levels filtered at runtime, messages assembled with an ostringstream so
// call sites can stream any printable type.  Thread-safe: message assembly is
// per-call, emission takes a mutex.
#pragma once

#include <atomic>
#include <ostream>
#include <sstream>
#include <string>

#include "src/util/thread_annotations.h"

namespace vodrep {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global logging configuration and sink.
class Logger {
 public:
  static Logger& instance();

  /// Messages below `level` are dropped.  Atomic: emit() reads the level
  /// before taking the emission mutex (the cheap early-drop path), so a
  /// concurrent set_level would otherwise race (tsan-visible; see
  /// tests/logging_test.cc ConcurrentSetLevelIsRaceFree).
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }

  /// Redirects output (default stderr).  The stream must outlive all logging.
  void set_sink(std::ostream* sink) VODREP_EXCLUDES(mutex_);

  /// Emits one formatted line; called by the LOG macro machinery.
  void emit(LogLevel level, const std::string& message) VODREP_EXCLUDES(mutex_);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kInfo};
  Mutex mutex_;
  /// The sink pointer itself is guarded; the pointed-to stream is only
  /// written under the same mutex (one emit at a time).
  std::ostream* sink_ VODREP_GUARDED_BY(mutex_) = nullptr;
};

namespace detail {
/// Accumulates one log statement and emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

/// Usage: vodrep::log(LogLevel::kInfo) << "ran " << n << " replications";
inline detail::LogLine log(LogLevel level) { return detail::LogLine(level); }

}  // namespace vodrep
