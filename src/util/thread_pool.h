// Fixed-size thread pool for embarrassingly parallel experiment sweeps.
//
// The experiment harness runs many independent simulation replications; each
// replication owns its RNG (derived from the base seed and run index) so the
// result is identical regardless of thread count or scheduling.  The pool
// offers a bulk parallel_for, which is the only primitive the harness needs.
//
// Queue and shutdown state are mutex-protected and annotated
// (VODREP_GUARDED_BY) so the clang lanes verify the locking discipline at
// compile time; see src/util/thread_annotations.h.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "src/util/thread_annotations.h"

namespace vodrep {

/// A fixed pool of worker threads executing queued tasks.  Destruction joins
/// all workers after draining the queue.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs body(i) for i in [0, count) across the pool and blocks until every
  /// iteration finished.  The first exception thrown by any iteration is
  /// rethrown on the calling thread after all iterations complete or drain.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  void enqueue(std::function<void()> task) VODREP_EXCLUDES(mutex_);
  void worker_loop();

  /// Set once in the constructor, then only read; not guarded.
  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ VODREP_GUARDED_BY(mutex_);
  bool stopping_ VODREP_GUARDED_BY(mutex_) = false;
  /// condition_variable_any so it can wait on the annotated UniqueLock.
  std::condition_variable_any cv_;
};

}  // namespace vodrep
