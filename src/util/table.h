// Console/CSV table rendering for experiment reports.
//
// The benchmark harness prints paper-style series (one row per arrival rate,
// one column per algorithm or replication degree).  Table collects typed
// cells and renders either an aligned console table or CSV, so every bench
// binary reports through one code path.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace vodrep {

/// A rectangular table with a header row and typed cells.  Numeric cells are
/// formatted with a configurable precision; string cells pass through.
class Table {
 public:
  using Cell = std::variant<std::string, double, long long>;

  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Number of columns (fixed at construction).
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }
  /// Number of data rows appended so far.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Appends a row; must contain exactly columns() cells.
  void add_row(std::vector<Cell> cells);

  /// Digits after the decimal point for double cells (default 3).
  void set_precision(int digits);

  /// Renders an aligned, human-readable table.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-style CSV (quotes fields containing commas/quotes).
  void print_csv(std::ostream& os) const;

  /// Convenience: renders the aligned table to a string.
  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] std::string format_cell(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

}  // namespace vodrep
