#include "src/util/cli.h"

#include <cstdlib>
#include <iostream>

#include "src/util/error.h"

namespace vodrep {
namespace {

std::string kind_name(int kind) {
  switch (kind) {
    case 0: return "int";
    case 1: return "double";
    case 2: return "bool";
    default: return "string";
  }
}

}  // namespace

CliFlags::CliFlags(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliFlags::add_int(const std::string& name, long long default_value,
                       const std::string& help) {
  flags_[name] = Flag{Kind::kInt, help, std::to_string(default_value)};
}

void CliFlags::add_double(const std::string& name, double default_value,
                          const std::string& help) {
  flags_[name] = Flag{Kind::kDouble, help, std::to_string(default_value)};
}

void CliFlags::add_bool(const std::string& name, bool default_value,
                        const std::string& help) {
  flags_[name] = Flag{Kind::kBool, help, default_value ? "true" : "false"};
}

void CliFlags::add_string(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  flags_[name] = Flag{Kind::kString, help, default_value};
}

void CliFlags::set_value(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  require(it != flags_.end(), [&] { return "unknown flag --" + name; });
  Flag& flag = it->second;
  switch (flag.kind) {
    case Kind::kInt: {
      char* end = nullptr;
      (void)std::strtoll(value.c_str(), &end, 10);
      require(end != value.c_str() && *end == '\0', [&] {
        return "flag --" + name + " expects an integer, got '" + value + "'";
      });
      break;
    }
    case Kind::kDouble: {
      char* end = nullptr;
      (void)std::strtod(value.c_str(), &end);
      require(end != value.c_str() && *end == '\0', [&] {
        return "flag --" + name + " expects a number, got '" + value + "'";
      });
      break;
    }
    case Kind::kBool:
      require(value == "true" || value == "false", [&] {
        return "flag --" + name + " expects true/false, got '" + value + "'";
      });
      break;
    case Kind::kString:
      break;
  }
  flag.value = value;
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      set_value(body.substr(0, eq), body.substr(eq + 1));
      continue;
    }
    // --no-name for booleans.
    if (body.rfind("no-", 0) == 0) {
      const std::string name = body.substr(3);
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.kind == Kind::kBool) {
        it->second.value = "false";
        continue;
      }
    }
    auto it = flags_.find(body);
    require(it != flags_.end(), [&] { return "unknown flag --" + body; });
    if (it->second.kind == Kind::kBool) {
      it->second.value = "true";
      continue;
    }
    require(i + 1 < argc,
            [&] { return "flag --" + body + " expects a value"; });
    set_value(body, argv[++i]);
  }
  return true;
}

const CliFlags::Flag& CliFlags::find(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  require(it != flags_.end(),
          [&] { return "flag --" + name + " was never declared"; });
  require(it->second.kind == kind, [&] {
    return "flag --" + name + " accessed as " +
           kind_name(static_cast<int>(kind)) + " but declared otherwise";
  });
  return it->second;
}

long long CliFlags::get_int(const std::string& name) const {
  return std::strtoll(find(name, Kind::kInt).value.c_str(), nullptr, 10);
}

double CliFlags::get_double(const std::string& name) const {
  return std::strtod(find(name, Kind::kDouble).value.c_str(), nullptr);
}

bool CliFlags::get_bool(const std::string& name) const {
  return find(name, Kind::kBool).value == "true";
}

const std::string& CliFlags::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

void CliFlags::print_usage(std::ostream& os) const {
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (" << kind_name(static_cast<int>(flag.kind))
       << ", default " << flag.value << ")\n      " << flag.help << "\n";
  }
}

}  // namespace vodrep
