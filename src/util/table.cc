#include "src/util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/util/error.h"

namespace vodrep {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "Table: at least one column required");
}

void Table::add_row(std::vector<Cell> cells) {
  require(cells.size() == headers_.size(),
          "Table::add_row: cell count does not match column count");
  rows_.push_back(std::move(cells));
}

void Table::set_precision(int digits) {
  require(digits >= 0 && digits <= 17, "Table::set_precision: bad precision");
  precision_ = digits;
}

std::string Table::format_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<long long>(&cell)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << cells[c];
      os << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rendered) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char ch : field) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << quote(cells[c]) << (c + 1 == cells.size() ? "\n" : ",");
    }
  };
  emit(headers_);
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& cell : row) cells.push_back(format_cell(cell));
    emit(cells);
  }
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace vodrep
