#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/error.h"

namespace vodrep {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::ci95_halfwidth() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void TimeWeightedMean::add(double value, double duration) {
  if (duration <= 0.0) return;
  weighted_sum_ += value * duration;
  total_time_ += duration;
}

double TimeWeightedMean::mean() const {
  return total_time_ > 0.0 ? weighted_sum_ / total_time_ : 0.0;
}

double quantile(std::vector<double> values, double q) {
  require(!values.empty(), "quantile: empty input");
  require(q >= 0.0 && q <= 1.0, "quantile: q must be in [0, 1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double mean_of(const std::vector<double>& values) {
  require(!values.empty(), "mean_of: empty input");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev_of(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean_of(values);
  double m2 = 0.0;
  for (double v : values) m2 += (v - m) * (v - m);
  return std::sqrt(m2 / static_cast<double>(values.size() - 1));
}

}  // namespace vodrep
