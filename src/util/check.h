// Contract-check macros for internal invariants.
//
// `vodrep::require` (src/util/error.h) guards public API boundaries and is
// always on.  The VODREP_DCHECK family guards *internal* invariants — the
// delta/undo bookkeeping of the SA hot path, placement post-conditions, audit
// cross-checks — and compiles to nothing on the default release path:
//
//   * Debug builds (NDEBUG undefined): contracts are enforced.
//   * Release builds: contracts are compiled out unless the build defines
//     VODREP_AUDIT (CMake option of the same name), which re-enables them at
//     full optimization for soak runs and CI audit jobs.
//
// A failed contract throws ContractViolationError carrying the stringified
// expression, source location, and message, so tests can assert on violations
// and the audit CLI reports them instead of aborting mid-run.  Message
// arguments are evaluated only on the failure path; when contracts are
// disabled the condition itself is not evaluated (only type-checked).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace vodrep {

/// Raised when a VODREP_DCHECK contract fails: an internal invariant the
/// library promised itself no longer holds.  Always a bug, never bad input.
class ContractViolationError : public std::logic_error {
 public:
  explicit ContractViolationError(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_failed(const char* expression,
                                         const char* file, int line,
                                         const std::string& message) {
  std::ostringstream os;
  os << "contract violated: " << expression << " (" << file << ":" << line
     << ")";
  if (!message.empty()) os << ": " << message;
  throw ContractViolationError(os.str());
}

template <typename Lhs, typename Rhs>
[[noreturn]] void contract_failed_binary(const char* expression,
                                         const char* file, int line,
                                         const std::string& message,
                                         const Lhs& lhs, const Rhs& rhs) {
  std::ostringstream os;
  os << "contract violated: " << expression << " with lhs=" << lhs
     << " rhs=" << rhs << " (" << file << ":" << line << ")";
  if (!message.empty()) os << ": " << message;
  throw ContractViolationError(os.str());
}

}  // namespace detail
}  // namespace vodrep

#if !defined(NDEBUG) || defined(VODREP_AUDIT)
#define VODREP_CONTRACTS_ENABLED 1
#else
#define VODREP_CONTRACTS_ENABLED 0
#endif

#if VODREP_CONTRACTS_ENABLED

#define VODREP_DCHECK(condition, message)                            \
  ((condition) ? static_cast<void>(0)                                \
               : ::vodrep::detail::contract_failed(#condition, __FILE__, \
                                                   __LINE__, (message)))

#define VODREP_DCHECK_BINARY_(op, lhs, rhs, message)                       \
  (((lhs)op(rhs))                                                          \
       ? static_cast<void>(0)                                              \
       : ::vodrep::detail::contract_failed_binary(#lhs " " #op " " #rhs,   \
                                                  __FILE__, __LINE__,      \
                                                  (message), (lhs), (rhs)))

#else

// Disabled: nothing is evaluated, but operands stay type-checked so a
// contract cannot silently rot (and variables used only in contracts do not
// trigger -Wunused warnings).
#define VODREP_DCHECK(condition, message) \
  (false ? static_cast<void>(condition) : static_cast<void>(0))

#define VODREP_DCHECK_BINARY_(op, lhs, rhs, message) \
  (false ? static_cast<void>((lhs)op(rhs)) : static_cast<void>(0))

#endif

#define VODREP_DCHECK_EQ(lhs, rhs, message) \
  VODREP_DCHECK_BINARY_(==, lhs, rhs, message)
#define VODREP_DCHECK_NE(lhs, rhs, message) \
  VODREP_DCHECK_BINARY_(!=, lhs, rhs, message)
#define VODREP_DCHECK_LE(lhs, rhs, message) \
  VODREP_DCHECK_BINARY_(<=, lhs, rhs, message)
#define VODREP_DCHECK_LT(lhs, rhs, message) \
  VODREP_DCHECK_BINARY_(<, lhs, rhs, message)
#define VODREP_DCHECK_GE(lhs, rhs, message) \
  VODREP_DCHECK_BINARY_(>=, lhs, rhs, message)
#define VODREP_DCHECK_GT(lhs, rhs, message) \
  VODREP_DCHECK_BINARY_(>, lhs, rhs, message)
