// Minimal command-line flag parser for the bench and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name` forms.  Flags are declared with defaults and a help string;
// `--help` prints the generated usage text.  Unknown flags are an error so
// typos do not silently run the default experiment.
#pragma once

#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace vodrep {

/// Declarative flag set.  Usage:
///   CliFlags flags("bench_fig4", "Reproduces Figure 4.");
///   flags.add_int("runs", 20, "simulation replications per point");
///   flags.parse(argc, argv);           // throws InvalidArgumentError on bad input
///   int runs = flags.get_int("runs");
class CliFlags {
 public:
  CliFlags(std::string program, std::string description);

  void add_int(const std::string& name, long long default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parses argv.  Returns false when `--help` was requested (usage has been
  /// printed to stdout and the caller should exit 0).  Throws
  /// InvalidArgumentError on unknown flags or malformed values.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  void print_usage(std::ostream& os) const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  struct Flag {
    Kind kind;
    std::string help;
    std::string value;  // canonical textual representation
  };

  const Flag& find(const std::string& name, Kind kind) const;
  void set_value(const std::string& name, const std::string& value);

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace vodrep
