#include "src/analysis/erlang.h"

#include "src/util/error.h"

namespace vodrep {

double erlang_b(double erlangs, std::size_t channels) {
  require(erlangs >= 0.0, "erlang_b: offered load must be non-negative");
  if (channels == 0) return 1.0;
  if (erlangs == 0.0) return 0.0;
  // Forward recursion B(a, n) = a B(a, n-1) / (n + a B(a, n-1)); each step
  // keeps the value in (0, 1], so there is no overflow for any size.
  double blocking = 1.0;
  for (std::size_t n = 1; n <= channels; ++n) {
    blocking = erlangs * blocking /
               (static_cast<double>(n) + erlangs * blocking);
  }
  return blocking;
}

std::size_t channels_for_blocking(double erlangs, double target_blocking) {
  require(erlangs >= 0.0, "channels_for_blocking: bad offered load");
  require(target_blocking > 0.0 && target_blocking < 1.0,
          "channels_for_blocking: target must be in (0, 1)");
  if (erlangs == 0.0) return 0;
  // Run the same recursion until the blocking drops under the target; the
  // answer is O(a + sqrt(a)) channels, so the loop is short.  The explicit
  // cap guards against pathological targets.
  double blocking = 1.0;
  const std::size_t cap =
      static_cast<std::size_t>(4.0 * erlangs) + 64 +
      static_cast<std::size_t>(8.0 / target_blocking);
  for (std::size_t n = 1; n <= cap; ++n) {
    blocking = erlangs * blocking /
               (static_cast<double>(n) + erlangs * blocking);
    if (blocking <= target_blocking) return n;
  }
  throw InfeasibleError(
      "channels_for_blocking: target unreachable within the search cap");
}

double balanced_split_blocking(double total_erlangs, std::size_t servers,
                               std::size_t channels_per_server) {
  require(servers >= 1, "balanced_split_blocking: need a server");
  return erlang_b(total_erlangs / static_cast<double>(servers),
                  channels_per_server);
}

}  // namespace vodrep
