// Erlang loss (M/G/c/c) analysis of the VoD cluster.
//
// A streaming server with B/b concurrent-stream slots and no waiting room
// is exactly an Erlang loss system; because the Erlang-B formula is
// insensitive to the service-time distribution, it applies verbatim to our
// deterministic 90-minute holding times.  This module provides the
// closed forms that (a) validate the discrete-event simulator against
// theory and (b) explain the paper's Section 5 observation that rejections
// appear below nominal capacity: with offered load a = lambda * T and c
// channels, the blocking probability B(a, c) is strictly positive for any
// finite c — perfect balancing removes placement-induced rejections but
// never the arrival-variance floor.
//
// Two reference points bracket every layout:
//   * pooled cluster: one loss system with N*B/b channels — what ideal
//     wide striping achieves;
//   * balanced split: N independent systems, each with B/b channels fed
//     lambda/N — what perfectly balanced replication with random splitting
//     achieves.  Pooling always blocks less (resource-pooling principle),
//     and the gap is the intrinsic price of partitioned bandwidth.
#pragma once

#include <cstddef>

namespace vodrep {

/// Erlang-B blocking probability for offered load `erlangs` (= arrival rate
/// x mean holding time) on `channels` servers.  Uses the numerically stable
/// forward recursion; exact for M/G/c/c.  channels == 0 blocks everything.
[[nodiscard]] double erlang_b(double erlangs, std::size_t channels);

/// Smallest channel count whose Erlang-B blocking is <= `target_blocking`
/// at the given offered load (capacity planning / inverse Erlang-B).
/// Throws InvalidArgumentError unless 0 < target_blocking < 1.
[[nodiscard]] std::size_t channels_for_blocking(double erlangs,
                                                double target_blocking);

/// Blocking of a cluster of `servers` independent loss systems with
/// `channels_per_server` channels each, fed an even 1/N split of the
/// offered load — the perfectly-balanced-replication reference point.
[[nodiscard]] double balanced_split_blocking(double total_erlangs,
                                             std::size_t servers,
                                             std::size_t channels_per_server);

}  // namespace vodrep
