#include "src/online/provisioner.h"

#include <algorithm>
#include <numeric>

#include "src/util/error.h"

namespace vodrep {

namespace {

/// Ids sorted by popularity (non-increasing, ties by id) plus the
/// normalized rank-space vector.
struct RankView {
  std::vector<std::size_t> id_of_rank;
  std::vector<double> ranked;
};

RankView rank_view(const std::vector<double>& popularity_by_id) {
  const std::size_t m = popularity_by_id.size();
  require(m >= 1, "provision_by_id: empty popularity vector");
  double sum = 0.0;
  for (double p : popularity_by_id) {
    require(p > 0.0, "provision_by_id: popularities must be positive");
    sum += p;
  }
  RankView view;
  view.id_of_rank.resize(m);
  std::iota(view.id_of_rank.begin(), view.id_of_rank.end(), 0);
  std::stable_sort(view.id_of_rank.begin(), view.id_of_rank.end(),
                   [&](std::size_t a, std::size_t b) {
                     return popularity_by_id[a] > popularity_by_id[b];
                   });
  view.ranked.resize(m);
  for (std::size_t r = 0; r < m; ++r) {
    view.ranked[r] = popularity_by_id[view.id_of_rank[r]] / sum;
  }
  return view;
}

}  // namespace

ReplicationPlan replicate_by_id(const std::vector<double>& popularity_by_id,
                                const ReplicationPolicy& replication,
                                std::size_t num_servers, std::size_t budget) {
  const RankView view = rank_view(popularity_by_id);
  const ReplicationPlan ranked_plan =
      replication.replicate(view.ranked, num_servers, budget);
  ReplicationPlan plan;
  plan.replicas.resize(popularity_by_id.size());
  for (std::size_t r = 0; r < plan.replicas.size(); ++r) {
    plan.replicas[view.id_of_rank[r]] = ranked_plan.replicas[r];
  }
  return plan;
}

IdProvisioningResult provision_by_id(
    const std::vector<double>& popularity_by_id,
    const ReplicationPolicy& replication, const PlacementPolicy& placement,
    std::size_t num_servers, std::size_t budget,
    std::size_t capacity_per_server) {
  const RankView view = rank_view(popularity_by_id);
  const std::size_t m = popularity_by_id.size();

  const ReplicationPlan ranked_plan =
      replication.replicate(view.ranked, num_servers, budget);
  const Layout ranked_layout = placement.place(ranked_plan, view.ranked,
                                               num_servers,
                                               capacity_per_server);

  IdProvisioningResult result;
  result.plan.replicas.resize(m);
  result.layout.assignment.resize(m);
  for (std::size_t r = 0; r < m; ++r) {
    result.plan.replicas[view.id_of_rank[r]] = ranked_plan.replicas[r];
    result.layout.assignment[view.id_of_rank[r]] = ranked_layout.assignment[r];
  }
  return result;
}

}  // namespace vodrep
