// Adaptive replication controller: the run-time loop the paper's Section
// 4.1.2 alludes to ("the replication algorithms can be applied for dynamic
// replication during run-time").
//
// The controller owns the current layout.  After each epoch (e.g. a daily
// peak period) it folds the epoch's observed per-video request counts into
// its popularity estimator and, when the estimate has moved enough,
// re-provisions with the configured replication/placement policies and
// emits the migration plan that realizes the new layout.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/core/layout.h"
#include "src/obs/timeseries.h"
#include "src/online/estimator.h"
#include "src/online/migration.h"
#include "src/online/provisioner.h"

namespace vodrep {

struct ControllerConfig {
  std::string replication = "adams";
  std::string placement = "slf";
  std::size_t num_servers = 0;
  std::size_t budget = 0;               ///< cluster-wide replica budget
  std::size_t capacity_per_server = 0;  ///< replica slots per server
  double estimator_decay = 0.5;
  double estimator_smoothing = 1.0;
  /// Hysteresis: skip re-provisioning when the L1 distance between the new
  /// estimate and the estimate last acted upon is below this threshold.
  /// 0 re-provisions every epoch.
  double replan_threshold = 0.0;
  /// Realize new plans with migration-aware incremental placement (keep
  /// replicas in place, move only what the plan demands).  When false, every
  /// replan runs the configured placement policy from scratch — maximum
  /// balance, maximum migration traffic.
  bool incremental = true;
};

/// Result of one adaptation step.
struct AdaptationStep {
  bool replanned = false;
  MigrationPlan migration;          ///< empty when not replanned
  double estimate_shift_l1 = 0.0;   ///< L1 distance that triggered (or not)
};

class AdaptiveController {
 public:
  /// Provisions the initial layout from `initial_popularity_by_id` (e.g. a
  /// forecast, or uniform when nothing is known).
  AdaptiveController(const ControllerConfig& config,
                     const std::vector<double>& initial_popularity_by_id);

  /// The layout currently deployed.
  [[nodiscard]] const Layout& layout() const { return layout_; }
  /// The replication plan currently deployed (by video id).
  [[nodiscard]] const ReplicationPlan& plan() const { return plan_; }

  /// Feeds one epoch of observed per-video request counts (indexed by id)
  /// into the estimator and closes the estimator epoch.
  void observe_epoch(const std::vector<std::size_t>& video_counts);

  /// Re-provisions from the current estimate if it moved beyond the
  /// threshold; returns what happened and the migration plan to apply.
  /// `now` is the *global* simulation time of the epoch boundary, used only
  /// to annotate an attached timeline ("replan" / "replan_skipped").
  [[nodiscard]] AdaptationStep adapt(double now = 0.0);

  /// Attaches a timeline collector (borrowed, may be null) so each adapt()
  /// call leaves a replan annotation at its epoch boundary.
  void set_timeline(obs::TimeseriesCollector* timeline) {
    timeline_ = timeline;
  }

  /// Current popularity estimate by video id (for reporting).
  [[nodiscard]] std::vector<double> estimate() const {
    return estimator_.estimate();
  }

 private:
  ControllerConfig config_;
  std::unique_ptr<ReplicationPolicy> replication_;
  std::unique_ptr<PlacementPolicy> placement_;
  PopularityEstimator estimator_;
  Layout layout_;
  ReplicationPlan plan_;
  std::vector<double> acted_estimate_;  ///< estimate behind the live layout
  obs::TimeseriesCollector* timeline_ = nullptr;  ///< borrowed, may be null
};

}  // namespace vodrep
