#include "src/online/adaptation_study.h"

#include <cmath>

#include "src/core/pipeline.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/units.h"
#include "src/workload/popularity.h"
#include "src/workload/trace.h"

namespace vodrep {

Table run_adaptation_study(const AdaptationStudyConfig& config,
                           std::uint64_t seed,
                           obs::TimeseriesCollector* timeline) {
  Rng rng(seed);
  const std::size_t m = config.num_videos;
  const auto budget = static_cast<std::size_t>(
      std::llround(config.replication_degree * static_cast<double>(m)));
  const std::size_t capacity =
      (budget + config.num_servers - 1) / config.num_servers;
  const double replica_bytes =
      units::video_bytes(config.duration_sec, config.bitrate_bps);

  SimConfig sim;
  sim.num_servers = config.num_servers;
  sim.bandwidth_bps_per_server = config.server_bandwidth_bps;
  sim.stream_bitrate_bps = config.bitrate_bps;
  sim.video_duration_sec = config.duration_sec;

  const auto replication = make_replication_policy("adams");
  const auto placement = make_placement_policy("slf");

  // Epoch-0 truth: a Zipf law over ids in rank order (id == initial rank).
  const std::vector<double> initial_truth = zipf_popularity(m, config.theta);
  std::vector<double> truth = initial_truth;

  // Static strategy: provisioned once from the initial truth.
  const Layout static_layout =
      provision_by_id(initial_truth, *replication, *placement,
                      config.num_servers, budget, capacity)
          .layout;

  // Adaptive strategy: the controller starts from the same prior.
  ControllerConfig controller_config;
  controller_config.num_servers = config.num_servers;
  controller_config.budget = budget;
  controller_config.capacity_per_server = capacity;
  controller_config.estimator_decay = config.estimator_decay;
  controller_config.replan_threshold = config.replan_threshold;
  controller_config.incremental = config.incremental_placement;
  AdaptiveController controller(controller_config, initial_truth);
  controller.set_timeline(timeline);

  Table table({"epoch", "churn_vs_day0", "reject%_static", "reject%_adaptive",
               "reject%_oracle", "migrated_GB", "copy_minutes"});
  table.set_precision(2);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    VODREP_TRACE_SCOPE("study.epoch");
    if (epoch > 0) truth = apply_drift(rng, std::move(truth), config.drift);

    TraceSpec spec;
    spec.arrival_rate = config.arrival_rate_per_sec;
    spec.horizon = config.duration_sec;
    spec.popularity = truth;
    const RequestTrace trace = generate_trace(rng, spec);

    const Layout oracle_layout =
        provision_by_id(truth, *replication, *placement, config.num_servers,
                        budget, capacity)
            .layout;

    // One single-shot engine per replay; the three strategies share the
    // trace so the comparison is paired.  Only the adaptive replay records
    // into the study timeline: epoch e lands at global times
    // [e*duration, (e+1)*duration) via the collector's time offset.
    auto replay = [&](const Layout& layout, bool on_timeline) {
      SimEngine engine(sim);
      ReplicatedPolicy policy(layout, sim);
      if (on_timeline && timeline != nullptr) {
        timeline->set_time_offset(static_cast<double>(epoch) *
                                  config.duration_sec);
        engine.attach_timeline(timeline);
      }
      return engine.run(policy, trace);
    };
    const SimResult static_result = replay(static_layout, false);
    const SimResult adaptive_result = replay(controller.layout(), true);
    const SimResult oracle_result = replay(oracle_layout, false);

    // Close the adaptive loop: learn from what was observed, re-provision,
    // and account for the migration the new layout costs.
    controller.observe_epoch(trace.video_counts(m));
    const AdaptationStep step =
        controller.adapt(static_cast<double>(epoch + 1) * config.duration_sec);
    const double migrated_gb =
        units::to_gigabytes(step.migration.bytes_moved(replica_bytes));
    const double copy_minutes = units::to_minutes(
        step.migration.copy_time_sec(replica_bytes, config.backbone_bps));
    if (obs::metrics_enabled()) {
      obs::MetricsRegistry& registry = obs::metrics();
      registry.counter("online.migration_bytes")
          .add(static_cast<std::uint64_t>(
              step.migration.bytes_moved(replica_bytes)));
      // Estimator error against the (normalized) epoch truth the controller
      // never sees directly — the adaptation-quality signal of Section 6.
      double truth_sum = 0.0;
      for (double p : truth) truth_sum += p;
      const std::vector<double> estimate = controller.estimate();
      double err_l1 = 0.0;
      for (std::size_t v = 0; v < m; ++v) {
        err_l1 += std::fabs(estimate[v] - truth[v] / truth_sum);
      }
      registry.gauge("online.estimator_error_l1").set(err_l1);
    }

    table.add_row({static_cast<long long>(epoch),
                   ranking_churn(initial_truth, truth),
                   100.0 * static_result.rejection_rate(),
                   100.0 * adaptive_result.rejection_rate(),
                   100.0 * oracle_result.rejection_rate(), migrated_gb,
                   copy_minutes});
  }
  return table;
}

}  // namespace vodrep
