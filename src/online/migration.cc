#include "src/online/migration.h"

#include <algorithm>

#include "src/util/error.h"

namespace vodrep {

double MigrationPlan::bytes_moved(double replica_bytes) const {
  require(replica_bytes >= 0.0, "MigrationPlan: negative replica size");
  return static_cast<double>(copies.size()) * replica_bytes;
}

double MigrationPlan::copy_time_sec(double replica_bytes,
                                    double backbone_bps) const {
  require(backbone_bps > 0.0, "MigrationPlan: backbone must be positive");
  return bytes_moved(replica_bytes) * 8.0 / backbone_bps;
}

MigrationPlan plan_migration(const Layout& from, const Layout& to) {
  require(from.num_videos() == to.num_videos(),
          "plan_migration: layouts cover different video sets");
  MigrationPlan plan;
  for (std::size_t video = 0; video < to.num_videos(); ++video) {
    const auto& old_servers = from.assignment[video];
    const auto& new_servers = to.assignment[video];
    for (std::size_t server : new_servers) {
      if (std::find(old_servers.begin(), old_servers.end(), server) ==
          old_servers.end()) {
        plan.copies.push_back(ReplicaCopy{video, server});
      }
    }
    for (std::size_t server : old_servers) {
      if (std::find(new_servers.begin(), new_servers.end(), server) ==
          new_servers.end()) {
        ++plan.deletions;
      }
    }
  }
  return plan;
}

}  // namespace vodrep
