// Migration-aware incremental placement.
//
// Re-running smallest-load-first placement from scratch after every
// popularity update reshuffles most of the cluster: SLF's round structure
// is globally sensitive to the weight order, so a tiny estimate change can
// move hundreds of gigabytes.  Incremental placement instead treats the
// previous layout as the starting point and realizes a new replication plan
// with the fewest replica copies:
//   1. keep every replica the new plan can still use;
//   2. for videos losing replicas, drop the copies on the most-loaded hosts;
//   3. evict (move) the lightest replicas from servers over their storage
//      capacity;
//   4. place the additions heaviest-first on the least-loaded feasible
//      server — the same greedy rule SLF applies within a round.
// The result trades a slightly higher expected-load imbalance for orders of
// magnitude less migration traffic; the vodrep_online_adaptation benchmark
// quantifies the trade.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/layout.h"
#include "src/core/replication.h"

namespace vodrep {

/// Realizes `new_plan` starting from `previous`, minimizing replica copies.
/// `popularity_by_id` supplies the balancing weights (any positive values;
/// normalized internally).  Falls back to throwing InfeasibleError only when
/// the plan cannot fit the cluster at all.
[[nodiscard]] Layout incremental_place(
    const Layout& previous, const ReplicationPlan& new_plan,
    const std::vector<double>& popularity_by_id, std::size_t num_servers,
    std::size_t capacity_per_server);

}  // namespace vodrep
