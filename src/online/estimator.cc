#include "src/online/estimator.h"

#include "src/util/error.h"

namespace vodrep {

PopularityEstimator::PopularityEstimator(std::size_t num_videos, double decay,
                                         double smoothing)
    : history_(num_videos, 0.0),
      current_(num_videos, 0.0),
      decay_(decay),
      smoothing_(smoothing) {
  require(num_videos >= 1, "PopularityEstimator: need at least one video");
  require(decay >= 0.0 && decay <= 1.0,
          "PopularityEstimator: decay must be in [0, 1]");
  require(smoothing >= 0.0, "PopularityEstimator: negative smoothing");
}

void PopularityEstimator::observe(std::size_t video, std::size_t count) {
  require(video < current_.size(), "PopularityEstimator: video out of range");
  current_[video] += static_cast<double>(count);
}

void PopularityEstimator::end_epoch() {
  for (std::size_t i = 0; i < history_.size(); ++i) {
    history_[i] = decay_ * history_[i] + current_[i];
    current_[i] = 0.0;
  }
}

std::vector<double> PopularityEstimator::estimate() const {
  std::vector<double> estimate(history_.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < history_.size(); ++i) {
    estimate[i] = history_[i] + current_[i] + smoothing_;
    sum += estimate[i];
  }
  // smoothing_ == 0 with no observations would make sum == 0; guard by
  // falling back to uniform.
  if (sum <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(estimate.size());
    for (double& e : estimate) e = uniform;
    return estimate;
  }
  for (double& e : estimate) e /= sum;
  return estimate;
}

double PopularityEstimator::observed_weight() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < history_.size(); ++i) {
    sum += history_[i] + current_[i];
  }
  return sum;
}

}  // namespace vodrep
