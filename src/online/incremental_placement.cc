#include "src/online/incremental_placement.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/util/error.h"

namespace vodrep {
namespace {

struct Pending {
  std::size_t video;
  double weight;
};

/// Repair move for a cornered addition of `video`: find a server s_o that
/// does not host `video` and a replica of some other video y on s_o that can
/// relocate to a server with free storage; perform the relocation and return
/// s_o (now with a free slot for `video`).  Returns num_servers when no such
/// swap exists.
std::size_t swap_in(Layout& layout, std::vector<double>& loads,
                    std::vector<std::size_t>& stored,
                    const std::vector<double>& weight, std::size_t video,
                    std::size_t num_servers,
                    std::size_t capacity_per_server) {
  const auto hosts = [&](std::size_t server, std::size_t v) {
    const auto& servers = layout.assignment[v];
    return std::find(servers.begin(), servers.end(), server) != servers.end();
  };
  for (std::size_t s_o = 0; s_o < num_servers; ++s_o) {
    if (hosts(s_o, video)) continue;
    for (std::size_t y = 0; y < layout.assignment.size(); ++y) {
      if (y == video || !hosts(s_o, y)) continue;
      for (std::size_t s_f = 0; s_f < num_servers; ++s_f) {
        if (s_f == s_o || stored[s_f] >= capacity_per_server ||
            hosts(s_f, y)) {
          continue;
        }
        auto& y_servers = layout.assignment[y];
        y_servers.erase(std::find(y_servers.begin(), y_servers.end(), s_o));
        y_servers.push_back(s_f);
        loads[s_o] -= weight[y];
        loads[s_f] += weight[y];
        --stored[s_o];
        ++stored[s_f];
        return s_o;
      }
    }
  }
  return num_servers;
}

}  // namespace

Layout incremental_place(const Layout& previous,
                         const ReplicationPlan& new_plan,
                         const std::vector<double>& popularity_by_id,
                         std::size_t num_servers,
                         std::size_t capacity_per_server) {
  const std::size_t m = new_plan.replicas.size();
  require(previous.num_videos() == m,
          "incremental_place: layout/plan video count mismatch");
  require(popularity_by_id.size() == m,
          "incremental_place: popularity size mismatch");
  require(num_servers >= 1, "incremental_place: need a server");
  double popularity_sum = 0.0;
  for (double p : popularity_by_id) {
    require(p > 0.0, "incremental_place: popularities must be positive");
    popularity_sum += p;
  }
  std::size_t total = 0;
  for (std::size_t video = 0; video < m; ++video) {
    require(new_plan.replicas[video] >= 1 &&
                new_plan.replicas[video] <= num_servers,
            "incremental_place: plan violates Eq. 7");
    total += new_plan.replicas[video];
  }
  if (total > num_servers * capacity_per_server) {
    throw InfeasibleError("incremental_place: plan does not fit the cluster");
  }

  // Per-replica weights under the NEW plan.
  std::vector<double> weight(m);
  for (std::size_t video = 0; video < m; ++video) {
    weight[video] = popularity_by_id[video] / popularity_sum /
                    static_cast<double>(new_plan.replicas[video]);
  }

  // Phase 1: keep all previous replicas (deduplicated, in range).
  Layout layout;
  layout.assignment.resize(m);
  std::vector<double> loads(num_servers, 0.0);
  std::vector<std::size_t> stored(num_servers, 0);
  for (std::size_t video = 0; video < m; ++video) {
    for (std::size_t server : previous.assignment[video]) {
      require(server < num_servers,
              "incremental_place: previous layout server out of range");
      auto& servers = layout.assignment[video];
      if (std::find(servers.begin(), servers.end(), server) == servers.end()) {
        servers.push_back(server);
        loads[server] += weight[video];
        ++stored[server];
      }
    }
  }

  auto drop_replica = [&](std::size_t video, std::size_t server) {
    auto& servers = layout.assignment[video];
    servers.erase(std::find(servers.begin(), servers.end(), server));
    loads[server] -= weight[video];
    --stored[server];
  };

  // Phase 2: videos that lost replicas shed them from their most-loaded
  // hosts (relieving the hottest links first).
  for (std::size_t video = 0; video < m; ++video) {
    while (layout.assignment[video].size() > new_plan.replicas[video]) {
      const auto& servers = layout.assignment[video];
      const std::size_t victim = *std::max_element(
          servers.begin(), servers.end(),
          [&](std::size_t a, std::size_t b) { return loads[a] < loads[b]; });
      drop_replica(video, victim);
    }
  }

  // Additions demanded by the new plan.
  std::vector<Pending> additions;
  for (std::size_t video = 0; video < m; ++video) {
    for (std::size_t k = layout.assignment[video].size();
         k < new_plan.replicas[video]; ++k) {
      additions.push_back(Pending{video, weight[video]});
    }
  }

  // Phase 3: relieve servers over their storage capacity by moving their
  // lightest replicas elsewhere (each move is one copy, same as an add).
  for (std::size_t server = 0; server < num_servers; ++server) {
    while (stored[server] > capacity_per_server) {
      std::size_t lightest = m;
      for (std::size_t video = 0; video < m; ++video) {
        const auto& servers = layout.assignment[video];
        if (std::find(servers.begin(), servers.end(), server) ==
            servers.end()) {
          continue;
        }
        if (lightest == m || weight[video] < weight[lightest]) {
          lightest = video;
        }
      }
      require(lightest < m, "incremental_place: over-full server holds nothing");
      drop_replica(lightest, server);
      additions.push_back(Pending{lightest, weight[lightest]});
    }
  }

  // Phase 4: place additions heaviest-first on the least-loaded feasible
  // server.
  std::stable_sort(additions.begin(), additions.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.weight > b.weight;
                   });
  for (const Pending& addition : additions) {
    const auto& hosting = layout.assignment[addition.video];
    std::size_t best = num_servers;
    double best_load = std::numeric_limits<double>::infinity();
    for (std::size_t server = 0; server < num_servers; ++server) {
      if (stored[server] >= capacity_per_server) continue;
      if (std::find(hosting.begin(), hosting.end(), server) != hosting.end()) {
        continue;
      }
      if (loads[server] < best_load) {
        best_load = loads[server];
        best = server;
      }
    }
    if (best == num_servers) {
      // Cornered: every server with free storage already hosts the video.
      // Repair by a three-way swap — relocate some other video's replica
      // from a non-hosting (full) server onto a free slot, then take its
      // place.  The relocation is one extra copy, captured automatically by
      // the migration diff.
      best = swap_in(layout, loads, stored, weight, addition.video,
                     num_servers, capacity_per_server);
      if (best == num_servers) {
        throw InfeasibleError(
            "incremental_place: no feasible server for an added replica");
      }
    }
    layout.assignment[addition.video].push_back(best);
    loads[best] += addition.weight;
    ++stored[best];
  }
  return layout;
}

}  // namespace vodrep
