// Id-space provisioning: run the rank-order replication/placement
// algorithms against a popularity vector indexed by video *id*.
//
// The core algorithms require a normalized non-increasing popularity vector
// (rank order).  In a running system popularities arrive keyed by video id
// in arbitrary order; this wrapper sorts ids by estimated popularity, runs
// the policies in rank space, and maps the plan and layout back to id
// space, so the rest of the system (dispatcher, traces) keeps addressing
// videos by stable ids.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/layout.h"
#include "src/core/placement.h"
#include "src/core/replication.h"

namespace vodrep {

struct IdProvisioningResult {
  ReplicationPlan plan;  ///< replicas per video id
  Layout layout;         ///< assignment per video id
};

/// Sorts `popularity_by_id` (any positive weights; normalized internally),
/// runs `replication` + `placement` in rank space, and returns the result
/// re-indexed by video id.  Ties break toward the lower id so the mapping
/// is deterministic.
[[nodiscard]] IdProvisioningResult provision_by_id(
    const std::vector<double>& popularity_by_id,
    const ReplicationPolicy& replication, const PlacementPolicy& placement,
    std::size_t num_servers, std::size_t budget,
    std::size_t capacity_per_server);

/// The replication half of provision_by_id: returns only the per-id replica
/// counts.  Used by callers that pair the plan with a migration-aware
/// placement (see incremental_placement.h) instead of a from-scratch one.
[[nodiscard]] ReplicationPlan replicate_by_id(
    const std::vector<double>& popularity_by_id,
    const ReplicationPolicy& replication, std::size_t num_servers,
    std::size_t budget);

}  // namespace vodrep
