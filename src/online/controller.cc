#include "src/online/controller.h"

#include <cmath>

#include "src/core/pipeline.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/online/incremental_placement.h"
#include "src/util/error.h"

namespace vodrep {
namespace {

double l1_distance(const std::vector<double>& a, const std::vector<double>& b) {
  require(a.size() == b.size(), "l1_distance: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

}  // namespace

AdaptiveController::AdaptiveController(
    const ControllerConfig& config,
    const std::vector<double>& initial_popularity_by_id)
    : config_(config),
      replication_(make_replication_policy(config.replication)),
      placement_(make_placement_policy(config.placement)),
      estimator_(initial_popularity_by_id.size(), config.estimator_decay,
                 config.estimator_smoothing) {
  require(config.num_servers >= 1, "AdaptiveController: need a server");
  require(config.replan_threshold >= 0.0,
          "AdaptiveController: negative replan threshold");
  IdProvisioningResult initial = provision_by_id(
      initial_popularity_by_id, *replication_, *placement_,
      config.num_servers, config.budget, config.capacity_per_server);
  layout_ = std::move(initial.layout);
  plan_ = std::move(initial.plan);
  // Normalize the prior so later L1 comparisons are distribution-to-
  // distribution.
  double sum = 0.0;
  for (double p : initial_popularity_by_id) sum += p;
  acted_estimate_.reserve(initial_popularity_by_id.size());
  for (double p : initial_popularity_by_id) acted_estimate_.push_back(p / sum);
}

void AdaptiveController::observe_epoch(
    const std::vector<std::size_t>& video_counts) {
  require(video_counts.size() == layout_.num_videos(),
          "AdaptiveController: count vector size mismatch");
  VODREP_TRACE_SCOPE("online.observe_epoch");
  if (obs::metrics_enabled()) {
    obs::metrics().counter("online.epochs_observed").inc();
  }
  for (std::size_t video = 0; video < video_counts.size(); ++video) {
    if (video_counts[video] > 0) {
      estimator_.observe(video, video_counts[video]);
    }
  }
  estimator_.end_epoch();
}

AdaptationStep AdaptiveController::adapt(double now) {
  VODREP_TRACE_SCOPE("online.adapt");
  AdaptationStep step;
  const std::vector<double> estimate = estimator_.estimate();
  step.estimate_shift_l1 = l1_distance(estimate, acted_estimate_);
  if (obs::metrics_enabled()) {
    obs::metrics().gauge("online.estimate_shift_l1")
        .set(step.estimate_shift_l1);
  }
  if (step.estimate_shift_l1 < config_.replan_threshold) {
    if (obs::metrics_enabled()) {
      obs::metrics().counter("online.replans_skipped").inc();
    }
    if (timeline_ != nullptr) timeline_->annotate(now, "replan_skipped");
    return step;
  }

  IdProvisioningResult next;
  if (config_.incremental) {
    next.plan = replicate_by_id(estimate, *replication_, config_.num_servers,
                                config_.budget);
    next.layout = incremental_place(layout_, next.plan, estimate,
                                    config_.num_servers,
                                    config_.capacity_per_server);
  } else {
    next = provision_by_id(estimate, *replication_, *placement_,
                           config_.num_servers, config_.budget,
                           config_.capacity_per_server);
  }
  step.migration = plan_migration(layout_, next.layout);
  step.replanned = true;
  if (timeline_ != nullptr) timeline_->annotate(now, "replan");
  layout_ = std::move(next.layout);
  plan_ = std::move(next.plan);
  acted_estimate_ = estimate;
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry& registry = obs::metrics();
    registry.counter("online.replans").inc();
    registry.counter("online.migration_copies")
        .add(step.migration.copies.size());
    registry.counter("online.migration_deletions")
        .add(step.migration.deletions);
  }
  return step;
}

}  // namespace vodrep
