// Migration planning: the cost of moving from one layout to another.
//
// Re-replication is not free — every replica that appears on a server that
// did not previously hold the video must be copied over the cluster
// backbone.  The migration plan enumerates those copies (and the deletions,
// which are free) so the adaptation experiments can weigh rejection-rate
// gains against bytes moved and copy time.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/layout.h"

namespace vodrep {

/// One replica copy: video must be materialized on `to_server`.
struct ReplicaCopy {
  std::size_t video = 0;
  std::size_t to_server = 0;
};

struct MigrationPlan {
  std::vector<ReplicaCopy> copies;      ///< replicas to create
  std::size_t deletions = 0;            ///< replicas to drop (free)

  /// Bytes that must cross the backbone: copies * bytes-per-replica.
  [[nodiscard]] double bytes_moved(double replica_bytes) const;
  /// Time to complete the copies over a backbone of `backbone_bps`,
  /// assuming copies are pipelined sequentially at full backbone rate.
  [[nodiscard]] double copy_time_sec(double replica_bytes,
                                     double backbone_bps) const;
};

/// Diffs two layouts over the same video-id space.  Throws on size
/// mismatch.
[[nodiscard]] MigrationPlan plan_migration(const Layout& from,
                                           const Layout& to);

}  // namespace vodrep
