// The dynamic re-replication experiment (E13 in DESIGN.md): a multi-epoch
// study comparing three provisioning strategies on a drifting workload.
//
//   * static  — provisioned once from the epoch-0 popularity and never
//               touched (the paper's conservative one-shot placement);
//   * adaptive — the AdaptiveController: learns popularity from observed
//               requests and re-provisions between epochs, paying migration
//               traffic;
//   * oracle  — re-provisioned each epoch from the *true* current
//               popularity (the unachievable upper bound).
//
// Each epoch is one peak period (the paper's 90 minutes); between epochs
// the true popularity drifts per the configured model.
#pragma once

#include <cstdint>

#include "src/online/controller.h"
#include "src/util/table.h"
#include "src/workload/drift.h"

namespace vodrep {

struct AdaptationStudyConfig {
  std::size_t num_videos = 300;
  std::size_t num_servers = 8;
  double server_bandwidth_bps = 1.8e9;
  double bitrate_bps = 4e6;
  double duration_sec = 90.0 * 60.0;
  double theta = 0.75;                ///< initial Zipf skew
  double replication_degree = 1.2;
  double arrival_rate_per_sec = 38.0 / 60.0;
  std::size_t epochs = 14;            ///< two weeks of daily peaks
  DriftSpec drift{DriftKind::kRankSwap, 0.05};
  double estimator_decay = 0.5;
  double replan_threshold = 0.0;
  bool incremental_placement = true;  ///< migration-aware layout updates
  double backbone_bps = 1.8e9;        ///< migration copy bandwidth
};

/// Runs the study and returns one row per epoch:
/// epoch, ranking churn vs epoch 0, rejection % (static / adaptive /
/// oracle), migration GB and copy minutes paid by the adaptive strategy.
///
/// When `timeline` is non-null, the adaptive strategy's replays record into
/// it on a global clock (epoch e spans [e*duration, (e+1)*duration)) and
/// each controller adapt() leaves a "replan"/"replan_skipped" annotation at
/// its epoch boundary.
[[nodiscard]] Table run_adaptation_study(
    const AdaptationStudyConfig& config, std::uint64_t seed,
    obs::TimeseriesCollector* timeline = nullptr);

}  // namespace vodrep
