// Online popularity estimation from observed requests.
//
// The paper assumes popularities are "known before the replication and
// placement"; in a running system they must be learned.  The estimator
// keeps exponentially decayed request counts per video id and turns them
// into a smoothed popularity vector.  Decay discounts history so the
// estimate tracks drift; additive smoothing keeps never-requested videos at
// a small non-zero popularity (every video must keep >= 1 replica, Eq. 7,
// so the downstream algorithms need positive weights).
#pragma once

#include <cstddef>
#include <vector>

namespace vodrep {

class PopularityEstimator {
 public:
  /// `decay` in [0, 1]: weight retained by one epoch-old counts (0 forgets
  /// everything each epoch, 1 never forgets).  `smoothing` >= 0 is the
  /// add-k pseudo-count per video.
  PopularityEstimator(std::size_t num_videos, double decay = 0.5,
                      double smoothing = 1.0);

  /// Records `count` observed requests for `video` in the current epoch.
  void observe(std::size_t video, std::size_t count = 1);

  /// Closes the current epoch: accumulated counts are folded into the
  /// decayed history.
  void end_epoch();

  /// Normalized popularity estimate by video id (history + current epoch +
  /// smoothing).  Always a valid distribution with positive entries.
  [[nodiscard]] std::vector<double> estimate() const;

  [[nodiscard]] std::size_t num_videos() const { return current_.size(); }
  /// Total decayed weight of past epochs plus the live epoch (diagnostic).
  [[nodiscard]] double observed_weight() const;

 private:
  std::vector<double> history_;  ///< decayed counts from closed epochs
  std::vector<double> current_;  ///< raw counts of the live epoch
  double decay_;
  double smoothing_;
};

}  // namespace vodrep
