#include "src/disk/disk_model.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace vodrep {

void DiskSpec::validate() const {
  require(avg_seek_sec >= 0.0, "DiskSpec: negative seek time");
  require(avg_rotational_sec >= 0.0, "DiskSpec: negative rotational latency");
  require(transfer_bps > 0.0, "DiskSpec: transfer rate must be positive");
}

void StorageSubsystem::validate() const {
  disk.validate();
  require(num_disks >= 1, "StorageSubsystem: need at least one disk");
  require(round_sec > 0.0, "StorageSubsystem: round length must be positive");
  require(memory_bytes > 0.0, "StorageSubsystem: memory must be positive");
}

double per_stream_disk_time(const DiskSpec& disk, double bitrate_bps,
                            double round_sec) {
  disk.validate();
  require(bitrate_bps > 0.0, "per_stream_disk_time: bad bit rate");
  require(round_sec > 0.0, "per_stream_disk_time: bad round length");
  const double segment_bits = bitrate_bps * round_sec;
  return disk.avg_seek_sec + disk.avg_rotational_sec +
         segment_bits / disk.transfer_bps;
}

std::size_t max_streams_disk(const StorageSubsystem& subsystem,
                             double bitrate_bps) {
  subsystem.validate();
  const double t =
      per_stream_disk_time(subsystem.disk, bitrate_bps, subsystem.round_sec);
  const auto per_disk = static_cast<std::size_t>(subsystem.round_sec / t);
  return subsystem.num_disks * per_disk;
}

std::size_t max_streams_memory(const StorageSubsystem& subsystem,
                               double bitrate_bps) {
  subsystem.validate();
  require(bitrate_bps > 0.0, "max_streams_memory: bad bit rate");
  const double segment_bytes = bitrate_bps * subsystem.round_sec / 8.0;
  return static_cast<std::size_t>(subsystem.memory_bytes /
                                  (2.0 * segment_bytes));
}

std::size_t ServerCapacityBreakdown::sustainable() const {
  return std::min({network_streams, disk_streams, memory_streams});
}

const char* ServerCapacityBreakdown::bottleneck() const {
  const std::size_t cap = sustainable();
  if (network_streams == cap) return "network";
  if (disk_streams == cap) return "disk";
  return "memory";
}

ServerCapacityBreakdown server_capacity(const StorageSubsystem& subsystem,
                                        double network_bps,
                                        double bitrate_bps) {
  require(network_bps > 0.0, "server_capacity: bad network bandwidth");
  require(bitrate_bps > 0.0, "server_capacity: bad bit rate");
  ServerCapacityBreakdown breakdown;
  breakdown.network_streams =
      static_cast<std::size_t>(network_bps / bitrate_bps);
  breakdown.disk_streams = max_streams_disk(subsystem, bitrate_bps);
  breakdown.memory_streams = max_streams_memory(subsystem, bitrate_bps);
  return breakdown;
}

double best_round_length(const StorageSubsystem& subsystem,
                         double bitrate_bps,
                         std::size_t candidates_per_decade) {
  subsystem.validate();
  require(candidates_per_decade >= 2, "best_round_length: too few candidates");
  StorageSubsystem candidate = subsystem;
  double best_round = subsystem.round_sec;
  std::size_t best_streams = 0;
  // Log-spaced scan over [0.1 s, 16 s]; the disk count rises with R while
  // the memory count falls, so the optimum is where they cross.
  const double lo = std::log(0.1);
  const double hi = std::log(16.0);
  const auto total = static_cast<std::size_t>(
      static_cast<double>(candidates_per_decade) * (hi - lo) / std::log(10.0));
  for (std::size_t i = 0; i <= total; ++i) {
    const double r = std::exp(
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(total));
    candidate.round_sec = r;
    const std::size_t streams =
        std::min(max_streams_disk(candidate, bitrate_bps),
                 max_streams_memory(candidate, bitrate_bps));
    if (streams > best_streams) {
      best_streams = streams;
      best_round = r;
    }
  }
  return best_round;
}

}  // namespace vodrep
