// Intra-server storage subsystem model: round-based disk admission control.
//
// The paper assumes "outgoing network bandwidth is the major performance
// bottleneck" and cites the classical single-server literature (its §2:
// striping inside storage devices, data retrieval amortizing seek time,
// buffering, jitter-free disk scheduling) as the machinery that makes the
// assumption true.  This module is that machinery in closed form — the
// standard round-robin (SCAN-round) admission model:
//
//   * time is divided into rounds of length R;
//   * each of n admitted streams must receive one segment of b*R bits per
//     round (continuity), costing one seek + rotational latency + transfer;
//   * a disk sustains n streams iff n * t_stream(R) <= R;
//   * double buffering holds 2 segments per stream in server memory.
//
// From a disk/array spec the model yields the maximum jitter-free stream
// count per server and, combined with the outgoing link, which resource
// binds — quantifying exactly when the paper's network-bottleneck
// assumption holds (the vodrep_disk_bottleneck benchmark sweeps it).
#pragma once

#include <cstddef>

namespace vodrep {

/// One spindle.  Defaults are a circa-2002 SCSI disk (the paper's era).
struct DiskSpec {
  double avg_seek_sec = 0.005;        ///< average seek
  double avg_rotational_sec = 0.00417;///< half a revolution at 7200 rpm
  double transfer_bps = 320e6;        ///< sustained media rate (40 MB/s)

  void validate() const;
};

/// A server's storage subsystem: D identical disks served round-robin
/// (video data striped across them inside the server, as the paper
/// suggests), plus the stream buffers in server memory.
struct StorageSubsystem {
  DiskSpec disk;
  std::size_t num_disks = 8;
  double round_sec = 1.0;             ///< service round length R
  double memory_bytes = 1e9;          ///< buffer pool

  void validate() const;
};

/// Disk time one stream costs per round: seek + rotation + transfer of the
/// b*R-bit segment.
[[nodiscard]] double per_stream_disk_time(const DiskSpec& disk,
                                          double bitrate_bps,
                                          double round_sec);

/// Maximum jitter-free streams the disk array sustains: num_disks *
/// floor(R / t_stream).
[[nodiscard]] std::size_t max_streams_disk(const StorageSubsystem& subsystem,
                                           double bitrate_bps);

/// Maximum streams the buffer pool sustains under double buffering
/// (2 segments of b*R bits per stream).
[[nodiscard]] std::size_t max_streams_memory(const StorageSubsystem& subsystem,
                                             double bitrate_bps);

/// Which resource limits a server and at how many streams.
struct ServerCapacityBreakdown {
  std::size_t network_streams = 0;
  std::size_t disk_streams = 0;
  std::size_t memory_streams = 0;

  [[nodiscard]] std::size_t sustainable() const;
  /// "network", "disk" or "memory" — the binding resource (ties go in that
  /// order, matching the paper's assumption first).
  [[nodiscard]] const char* bottleneck() const;
};

[[nodiscard]] ServerCapacityBreakdown server_capacity(
    const StorageSubsystem& subsystem, double network_bps,
    double bitrate_bps);

/// The round length that maximizes the disk stream count for a given
/// memory budget: longer rounds amortize seeks but inflate buffers.
/// Scans `candidates_per_decade` log-spaced rounds in [0.1 s, 16 s].
[[nodiscard]] double best_round_length(const StorageSubsystem& subsystem,
                                       double bitrate_bps,
                                       std::size_t candidates_per_decade = 32);

}  // namespace vodrep
