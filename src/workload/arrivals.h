// Request arrival processes.
//
// The paper generates request arrivals in the peak period by a Poisson
// process with rate lambda.  PoissonArrivals produces the event times of one
// realization; deterministic given the Rng.  A constant-rate process is also
// provided for deterministic stress tests and for the "perfectly balanced
// traffic would never reject below capacity" analysis in Section 5.3.
#pragma once

#include <vector>

#include "src/util/rng.h"

namespace vodrep {

/// One realization of a homogeneous Poisson process: strictly increasing
/// arrival times in [0, horizon).  `rate` is in events per unit time (the
/// simulator uses seconds).  rate == 0 yields no arrivals.
[[nodiscard]] std::vector<double> poisson_arrivals(Rng& rng, double rate,
                                                   double horizon);

/// Block-generated realization of the same process: draws `block` raw u64s
/// at a time, transforms them to exponential gaps in a separate (auto-
/// vectorizable) loop, and prefix-scans the gaps into arrival times.  The
/// output AND the generator's state afterwards are bit-for-bit identical to
/// poisson_arrivals for every block size — the transform reproduces
/// Rng::exponential's expression exactly, the scan adds gaps in the same
/// order, and when the running time crosses the horizon mid-block the
/// generator is restored from a snapshot and re-advanced by exactly the
/// number of draws the per-event loop would have consumed (one per gap,
/// crossing draw included).  Asserted by tests/arrival_batching_test.cc.
/// Requires block >= 1.
[[nodiscard]] std::vector<double> poisson_arrivals_block(Rng& rng, double rate,
                                                         double horizon,
                                                         std::size_t block);

/// Deterministic, evenly spaced arrivals at exactly `rate` events per unit
/// time over [0, horizon).  The k-th arrival is at (k + 0.5)/rate so no event
/// coincides with the horizon boundary.
[[nodiscard]] std::vector<double> uniform_arrivals(double rate, double horizon);

}  // namespace vodrep
