// Request arrival processes.
//
// The paper generates request arrivals in the peak period by a Poisson
// process with rate lambda.  PoissonArrivals produces the event times of one
// realization; deterministic given the Rng.  A constant-rate process is also
// provided for deterministic stress tests and for the "perfectly balanced
// traffic would never reject below capacity" analysis in Section 5.3.
#pragma once

#include <vector>

#include "src/util/rng.h"

namespace vodrep {

/// One realization of a homogeneous Poisson process: strictly increasing
/// arrival times in [0, horizon).  `rate` is in events per unit time (the
/// simulator uses seconds).  rate == 0 yields no arrivals.
[[nodiscard]] std::vector<double> poisson_arrivals(Rng& rng, double rate,
                                                   double horizon);

/// Deterministic, evenly spaced arrivals at exactly `rate` events per unit
/// time over [0, horizon).  The k-th arrival is at (k + 0.5)/rate so no event
/// coincides with the horizon boundary.
[[nodiscard]] std::vector<double> uniform_arrivals(double rate, double horizon);

}  // namespace vodrep
