#include "src/workload/drift.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace vodrep {

std::vector<double> apply_drift(Rng& rng,
                                std::vector<double> popularity_by_id,
                                const DriftSpec& spec) {
  require(!popularity_by_id.empty(), "apply_drift: empty popularity vector");
  require(spec.intensity >= 0.0, "apply_drift: negative intensity");
  const std::size_t m = popularity_by_id.size();

  switch (spec.kind) {
    case DriftKind::kRankSwap: {
      const auto swaps = static_cast<std::size_t>(
          std::llround(spec.intensity * static_cast<double>(m)));
      for (std::size_t k = 0; k < swaps; ++k) {
        const std::size_t a = rng.uniform_index(m);
        const std::size_t b = rng.uniform_index(m);
        std::swap(popularity_by_id[a], popularity_by_id[b]);
      }
      return popularity_by_id;  // a permutation stays normalized
    }
    case DriftKind::kHotSwap: {
      const auto events = static_cast<std::size_t>(std::ceil(spec.intensity));
      for (std::size_t k = 0; k < events; ++k) {
        // Promote a random video from the colder half of the catalogue to
        // 1.5x the current maximum — a chart-topping new release.
        std::vector<std::size_t> order(m);
        for (std::size_t i = 0; i < m; ++i) order[i] = i;
        std::nth_element(order.begin(), order.begin() + static_cast<long>(m / 2),
                         order.end(), [&](std::size_t a, std::size_t b) {
                           return popularity_by_id[a] > popularity_by_id[b];
                         });
        const std::size_t cold_count = m - m / 2;
        const std::size_t pick =
            order[m / 2 + rng.uniform_index(cold_count)];
        const double max_pop = *std::max_element(popularity_by_id.begin(),
                                                 popularity_by_id.end());
        popularity_by_id[pick] = 1.5 * max_pop;
        double sum = 0.0;
        for (double p : popularity_by_id) sum += p;
        for (double& p : popularity_by_id) p /= sum;
      }
      return popularity_by_id;
    }
  }
  detail::throw_invalid("apply_drift: unknown drift kind");
}

double ranking_churn(const std::vector<double>& before,
                     const std::vector<double>& after) {
  require(before.size() == after.size() && !before.empty(),
          "ranking_churn: size mismatch or empty input");
  const std::size_t m = before.size();
  if (m == 1) return 0.0;
  std::size_t discordant = 0;
  std::size_t comparable = 0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const double db = before[i] - before[j];
      const double da = after[i] - after[j];
      if (db == 0.0 || da == 0.0) continue;  // ties carry no order signal
      ++comparable;
      if ((db > 0.0) != (da > 0.0)) ++discordant;
    }
  }
  return comparable == 0 ? 0.0
                         : static_cast<double>(discordant) /
                               static_cast<double>(comparable);
}

}  // namespace vodrep
