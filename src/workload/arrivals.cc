#include "src/workload/arrivals.h"

#include <cmath>

#include "src/util/error.h"

namespace vodrep {

std::vector<double> poisson_arrivals(Rng& rng, double rate, double horizon) {
  require(rate >= 0.0, "poisson_arrivals: rate must be non-negative");
  require(horizon >= 0.0, "poisson_arrivals: horizon must be non-negative");
  std::vector<double> times;
  if (rate == 0.0 || horizon == 0.0) return times;
  times.reserve(static_cast<std::size_t>(rate * horizon * 1.2) + 16);
  double t = rng.exponential(rate);
  while (t < horizon) {
    times.push_back(t);
    t += rng.exponential(rate);
  }
  return times;
}

std::vector<double> uniform_arrivals(double rate, double horizon) {
  require(rate >= 0.0, "uniform_arrivals: rate must be non-negative");
  require(horizon >= 0.0, "uniform_arrivals: horizon must be non-negative");
  std::vector<double> times;
  if (rate == 0.0 || horizon == 0.0) return times;
  const auto count = static_cast<std::size_t>(std::floor(rate * horizon));
  times.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    times.push_back((static_cast<double>(k) + 0.5) / rate);
  }
  return times;
}

}  // namespace vodrep
