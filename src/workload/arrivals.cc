#include "src/workload/arrivals.h"

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "src/util/error.h"

namespace vodrep {

std::vector<double> poisson_arrivals(Rng& rng, double rate, double horizon) {
  require(rate >= 0.0, "poisson_arrivals: rate must be non-negative");
  require(horizon >= 0.0, "poisson_arrivals: horizon must be non-negative");
  std::vector<double> times;
  if (rate == 0.0 || horizon == 0.0) return times;
  times.reserve(static_cast<std::size_t>(rate * horizon * 1.2) + 16);
  double t = rng.exponential(rate);
  while (t < horizon) {
    times.push_back(t);
    t += rng.exponential(rate);
  }
  return times;
}

std::vector<double> poisson_arrivals_block(Rng& rng, double rate,
                                           double horizon, std::size_t block) {
  require(rate >= 0.0, "poisson_arrivals_block: rate must be non-negative");
  require(horizon >= 0.0,
          "poisson_arrivals_block: horizon must be non-negative");
  require(block >= 1, "poisson_arrivals_block: block size must be >= 1");
  std::vector<double> times;
  if (rate == 0.0 || horizon == 0.0) return times;
  times.reserve(static_cast<std::size_t>(rate * horizon * 1.2) + 16);
  std::vector<std::uint64_t> raw(block);
  std::vector<double> gaps(block);
  double t = 0.0;
  for (;;) {
    // Snapshot so a mid-block horizon crossing can rewind to the exact
    // generator state the per-event loop would leave behind (Rng is four
    // u64 words; copying it is cheaper than branching inside the block).
    const Rng snapshot = rng;
    for (std::size_t i = 0; i < block; ++i) raw[i] = rng.next_u64();
    // Exactly Rng::exponential(rate) == -log1p(-uniform()) / rate with
    // uniform() == (next_u64() >> 11) * 2^-53; element-wise, no
    // cross-iteration dependence, so the compiler may vectorize freely.
    for (std::size_t i = 0; i < block; ++i) {
      gaps[i] = -std::log1p(-(static_cast<double>(raw[i] >> 11) * 0x1.0p-53)) /
                rate;
    }
    for (std::size_t i = 0; i < block; ++i) {
      t += gaps[i];
      if (t >= horizon) {
        // The per-event loop stops after the crossing draw, having consumed
        // i + 1 u64s of this block; rewind and replay exactly those.
        rng = snapshot;
        for (std::size_t k = 0; k <= i; ++k) (void)rng.next_u64();
        return times;
      }
      times.push_back(t);
    }
  }
}

std::vector<double> uniform_arrivals(double rate, double horizon) {
  require(rate >= 0.0, "uniform_arrivals: rate must be non-negative");
  require(horizon >= 0.0, "uniform_arrivals: horizon must be non-negative");
  std::vector<double> times;
  if (rate == 0.0 || horizon == 0.0) return times;
  const auto count = static_cast<std::size_t>(std::floor(rate * horizon));
  times.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    times.push_back((static_cast<double>(k) + 0.5) / rate);
  }
  return times;
}

}  // namespace vodrep
