// Multi-class, time-varying workloads (non-homogeneous arrivals).
//
// The paper assumes "the peak period is same for all videos" and calls the
// resulting provisioning conservative.  To quantify that conservatism, this
// module generates traces where content classes (kids' daytime catalogue,
// prime-time movies, ...) have their own piecewise-constant arrival-rate
// profiles over a multi-hour horizon: a non-homogeneous Poisson process per
// class, each class choosing videos from its own popularity distribution
// over the shared id space.
#pragma once

#include <cstddef>
#include <vector>

#include "src/util/rng.h"
#include "src/workload/trace.h"

namespace vodrep {

/// One content class: which videos it requests (a distribution over the
/// global video-id space) and how its arrival rate evolves over the
/// horizon's equal-length segments.
struct ClassProfile {
  /// Video-choice weights by global video id; zero for ids outside the
  /// class.  Normalized internally; must have a positive sum.
  std::vector<double> popularity_by_id;
  /// Arrival rate (requests/second) in each segment; all classes must use
  /// the same segment count.
  std::vector<double> rate_per_segment;
};

/// Generation parameters: `segment_sec` * rate_per_segment.size() defines
/// the horizon.
struct MulticlassSpec {
  std::vector<ClassProfile> classes;
  double segment_sec = 0.0;

  [[nodiscard]] std::size_t num_segments() const;
  [[nodiscard]] double horizon() const;
  void validate() const;
};

/// One realization: per class and segment, Poisson arrivals at that
/// segment's rate, videos drawn from the class distribution; the merged
/// trace is sorted by arrival time.  Deterministic in `rng`.
[[nodiscard]] RequestTrace generate_multiclass_trace(
    Rng& rng, const MulticlassSpec& spec);

/// Helper for experiments: a single-peak rate profile — `base_rate`
/// everywhere except `peak_rate` on segments [peak_begin, peak_end).
[[nodiscard]] std::vector<double> single_peak_profile(
    std::size_t num_segments, std::size_t peak_begin, std::size_t peak_end,
    double base_rate, double peak_rate);

}  // namespace vodrep
