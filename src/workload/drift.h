// Popularity drift models for multi-epoch (day-over-day) workloads.
//
// The paper provisions for a single peak period with known popularities and
// notes the replication algorithms "can be applied for dynamic replication
// during run-time".  To exercise that, these models evolve a popularity
// vector *indexed by video id* (not by rank) across epochs:
//   * rank-swap drift — gradual churn: random pairs of videos exchange
//     popularity values, so ranks wander without changing the distribution's
//     shape;
//   * hot-swap drift — new-release events: a cold video jumps to the top of
//     the chart, demoting everything else proportionally.
#pragma once

#include <cstddef>
#include <vector>

#include "src/util/rng.h"

namespace vodrep {

enum class DriftKind {
  kRankSwap,  ///< `intensity * M` random popularity-value transpositions
  kHotSwap,   ///< `ceil(intensity)` cold videos promoted to chart-toppers
};

struct DriftSpec {
  DriftKind kind = DriftKind::kRankSwap;
  /// kRankSwap: fraction of the catalogue swapped per epoch (0 = static).
  /// kHotSwap: number of new-release events per epoch.
  double intensity = 0.0;
};

/// Applies one epoch of drift to `popularity_by_id` (a normalized vector
/// indexed by video id) and returns the evolved, still-normalized vector.
/// Deterministic given `rng`.
[[nodiscard]] std::vector<double> apply_drift(
    Rng& rng, std::vector<double> popularity_by_id, const DriftSpec& spec);

/// Kendall-tau-style churn diagnostic: fraction of video pairs whose
/// relative popularity order differs between the two vectors.  0 = same
/// ranking, 1 = fully reversed.  Quadratic; intended for tests/reports.
[[nodiscard]] double ranking_churn(const std::vector<double>& before,
                                   const std::vector<double>& after);

}  // namespace vodrep
