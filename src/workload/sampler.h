// O(1) sampling from a fixed discrete distribution (Vose's alias method).
//
// The simulator draws a video index for every request; with hundreds of
// thousands of requests per sweep the alias method keeps workload generation
// negligible next to the event processing itself.
#pragma once

#include <cstddef>
#include <vector>

#include "src/util/rng.h"

namespace vodrep {

/// Immutable discrete sampler over indices [0, n) with given probabilities.
class DiscreteSampler {
 public:
  /// Builds the alias tables from `probabilities`.  The input must be a
  /// non-empty vector of non-negative values with a positive sum; it is
  /// normalized internally.
  explicit DiscreteSampler(const std::vector<double>& probabilities);

  /// Number of outcomes.
  [[nodiscard]] std::size_t size() const { return prob_.size(); }

  /// Draws one index distributed according to the input probabilities.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// The normalized probability of outcome `i` (for tests/diagnostics).
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::vector<double> prob_;   // acceptance threshold per bucket
  std::vector<std::size_t> alias_;
  std::vector<double> normalized_;
};

}  // namespace vodrep
