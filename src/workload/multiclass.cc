#include "src/workload/multiclass.h"

#include <algorithm>

#include "src/util/error.h"
#include "src/workload/arrivals.h"
#include "src/workload/sampler.h"

namespace vodrep {

std::size_t MulticlassSpec::num_segments() const {
  return classes.empty() ? 0 : classes.front().rate_per_segment.size();
}

double MulticlassSpec::horizon() const {
  return segment_sec * static_cast<double>(num_segments());
}

void MulticlassSpec::validate() const {
  require(!classes.empty(), "MulticlassSpec: need at least one class");
  require(segment_sec > 0.0, "MulticlassSpec: segment length must be positive");
  const std::size_t segments = num_segments();
  require(segments >= 1, "MulticlassSpec: need at least one segment");
  std::size_t videos = classes.front().popularity_by_id.size();
  for (const ClassProfile& profile : classes) {
    require(profile.rate_per_segment.size() == segments,
            "MulticlassSpec: classes disagree on the segment count");
    require(profile.popularity_by_id.size() == videos,
            "MulticlassSpec: classes disagree on the video-id space");
    double sum = 0.0;
    for (double p : profile.popularity_by_id) {
      require(p >= 0.0, "MulticlassSpec: negative popularity weight");
      sum += p;
    }
    require(sum > 0.0, "MulticlassSpec: class requests nothing");
    for (double rate : profile.rate_per_segment) {
      require(rate >= 0.0, "MulticlassSpec: negative arrival rate");
    }
  }
}

RequestTrace generate_multiclass_trace(Rng& rng, const MulticlassSpec& spec) {
  spec.validate();
  RequestTrace trace;
  trace.horizon = spec.horizon();
  for (const ClassProfile& profile : spec.classes) {
    const DiscreteSampler sampler(profile.popularity_by_id);
    for (std::size_t segment = 0; segment < spec.num_segments(); ++segment) {
      const double rate = profile.rate_per_segment[segment];
      if (rate == 0.0) continue;
      const double offset = static_cast<double>(segment) * spec.segment_sec;
      for (double t : poisson_arrivals(rng, rate, spec.segment_sec)) {
        trace.requests.push_back(Request{offset + t, sampler.sample(rng)});
      }
    }
  }
  std::sort(trace.requests.begin(), trace.requests.end(),
            [](const Request& a, const Request& b) {
              return a.arrival_time < b.arrival_time;
            });
  return trace;
}

std::vector<double> single_peak_profile(std::size_t num_segments,
                                        std::size_t peak_begin,
                                        std::size_t peak_end,
                                        double base_rate, double peak_rate) {
  require(num_segments >= 1, "single_peak_profile: need a segment");
  require(peak_begin <= peak_end && peak_end <= num_segments,
          "single_peak_profile: bad peak window");
  require(base_rate >= 0.0 && peak_rate >= 0.0,
          "single_peak_profile: negative rate");
  std::vector<double> profile(num_segments, base_rate);
  for (std::size_t s = peak_begin; s < peak_end; ++s) profile[s] = peak_rate;
  return profile;
}

}  // namespace vodrep
