#include "src/workload/sampler.h"

#include <vector>

#include "src/util/error.h"

namespace vodrep {

DiscreteSampler::DiscreteSampler(const std::vector<double>& probabilities) {
  require(!probabilities.empty(), "DiscreteSampler: empty distribution");
  double sum = 0.0;
  for (double p : probabilities) {
    require(p >= 0.0, "DiscreteSampler: negative probability");
    sum += p;
  }
  require(sum > 0.0, "DiscreteSampler: probabilities sum to zero");

  const std::size_t n = probabilities.size();
  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) normalized_[i] = probabilities[i] / sum;

  // Vose's alias construction: scale to mean 1, split into small/large piles,
  // and pair each small bucket with a donor large bucket.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }
  prob_.assign(n, 1.0);
  alias_.resize(n);
  for (std::size_t i = 0; i < n; ++i) alias_[i] = i;

  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Whatever remains (numerical residue) keeps prob 1 / self-alias.
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  const std::size_t bucket = static_cast<std::size_t>(
      rng.uniform_index(static_cast<std::uint64_t>(prob_.size())));
  return rng.uniform() < prob_[bucket] ? bucket : alias_[bucket];
}

double DiscreteSampler::probability(std::size_t i) const {
  require(i < normalized_.size(), "DiscreteSampler::probability: out of range");
  return normalized_[i];
}

}  // namespace vodrep
