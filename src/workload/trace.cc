#include "src/workload/trace.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "src/util/error.h"
#include "src/workload/arrivals.h"

namespace vodrep {

std::vector<std::size_t> RequestTrace::video_counts(
    std::size_t num_videos) const {
  std::vector<std::size_t> counts(num_videos, 0);
  for (const Request& r : requests) {
    require(r.video < num_videos, "RequestTrace::video_counts: video id out of range");
    ++counts[r.video];
  }
  return counts;
}

bool RequestTrace::is_well_formed() const {
  double prev = 0.0;
  for (const Request& r : requests) {
    if (r.arrival_time < prev || r.arrival_time >= horizon) return false;
    prev = r.arrival_time;
  }
  return true;
}

void AbandonmentModel::validate() const {
  require(completion_probability >= 0.0 && completion_probability <= 1.0,
          "AbandonmentModel: completion probability must be in [0, 1]");
  require(min_partial_fraction > 0.0 && min_partial_fraction < 1.0,
          "AbandonmentModel: min partial fraction must be in (0, 1)");
}

RequestTrace generate_trace(Rng& rng, const TraceSpec& spec) {
  require(!spec.popularity.empty(), "generate_trace: empty popularity vector");
  spec.abandonment.validate();
  RequestTrace trace;
  trace.horizon = spec.horizon;
  // Arrival times are drawn en bloc before any per-request draws, so the
  // block-generated process (bit-identical output and RNG consumption at
  // every block size) leaves the whole trace unchanged.
  const std::vector<double> times = poisson_arrivals_block(
      rng, spec.arrival_rate, spec.horizon, spec.arrival_block);
  const DiscreteSampler sampler(spec.popularity);
  trace.requests.reserve(times.size());
  for (double t : times) {
    Request request;
    request.arrival_time = t;
    request.video = sampler.sample(rng);
    if (!rng.bernoulli(spec.abandonment.completion_probability)) {
      request.watch_fraction =
          rng.uniform(spec.abandonment.min_partial_fraction, 1.0);
    }
    trace.requests.push_back(request);
  }
  return trace;
}

void save_trace(std::ostream& os, const RequestTrace& trace) {
  os.precision(17);  // lossless double round-trip for times and fractions
  os << "vodrep-trace " << trace.requests.size() << " " << trace.horizon << "\n";
  for (const Request& r : trace.requests) {
    os << r.arrival_time << " " << r.video << " " << r.watch_fraction << "\n";
  }
}

RequestTrace load_trace(std::istream& is) {
  std::string magic;
  std::size_t count = 0;
  RequestTrace trace;
  is >> magic >> count >> trace.horizon;
  require(static_cast<bool>(is) && magic == "vodrep-trace",
          "load_trace: missing vodrep-trace header");
  trace.requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Request r;
    is >> r.arrival_time >> r.video >> r.watch_fraction;
    require(static_cast<bool>(is), "load_trace: truncated trace body");
    require(r.watch_fraction > 0.0 && r.watch_fraction <= 1.0,
            "load_trace: watch fraction out of (0, 1]");
    trace.requests.push_back(r);
  }
  return trace;
}

}  // namespace vodrep
