// Video popularity models.
//
// The paper assumes relative video popularities follow a Zipf-like
// distribution with skew parameter theta: the i-th most popular of M videos
// is requested with probability
//
//     p_i = (1 / i^theta) / sum_{j=1..M} (1 / j^theta),    0.271 <= theta <= 1.
//
// theta = 0 gives a uniform distribution; larger theta concentrates requests
// on the hottest videos.  All core algorithms consume a plain probability
// vector sorted in non-increasing order, produced here.
#pragma once

#include <cstddef>
#include <vector>

namespace vodrep {

/// Zipf-like popularity vector for `num_videos` videos with skew `theta`.
/// Entry i is the probability of requesting the (i+1)-th most popular video.
/// The result is normalized and non-increasing.  Requires num_videos >= 1 and
/// theta >= 0 (the paper's range is [0.271, 1] but the math is valid for any
/// non-negative skew; theta = 0 degenerates to uniform).
[[nodiscard]] std::vector<double> zipf_popularity(std::size_t num_videos,
                                                  double theta);

/// Uniform popularity vector (every video equally likely).
[[nodiscard]] std::vector<double> uniform_popularity(std::size_t num_videos);

/// Normalizes a vector of non-negative weights into probabilities and sorts
/// it in non-increasing order (the order the replication algorithms expect).
/// Throws if the weights are empty, contain a negative entry, or sum to zero.
[[nodiscard]] std::vector<double> normalized_popularity(
    std::vector<double> weights);

/// Validates that `p` is a popularity vector: non-empty, entries in [0, 1],
/// non-increasing, summing to 1 within `tolerance`.  Returns true when valid.
[[nodiscard]] bool is_popularity_vector(const std::vector<double>& p,
                                        double tolerance = 1e-9);

/// Skew concentration diagnostic: smallest k such that the top-k videos
/// cover at least `fraction` of the total probability.  Useful for reporting
/// and for validating generated distributions against the Zipf shape.
[[nodiscard]] std::size_t top_k_for_coverage(const std::vector<double>& p,
                                             double fraction);

}  // namespace vodrep
