// Request traces: a materialized sequence of (arrival time, video id)
// requests for one peak period.
//
// Traces decouple workload generation from simulation: the same trace can be
// replayed against different layouts/dispatch policies (the Figure 5 and 6
// comparisons hold the workload fixed across algorithm combinations, which
// sharpens the contrasts), and traces can be saved/loaded as text for
// external analysis.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "src/util/rng.h"
#include "src/workload/sampler.h"

namespace vodrep {

/// One client request for a video stream.
struct Request {
  double arrival_time = 0.0;  ///< seconds from the start of the peak period
  std::size_t video = 0;      ///< popularity-rank index of the requested video
  /// Fraction of the video the client actually watches in (0, 1]; 1.0 is
  /// the paper's whole-video model, smaller values model viewers who
  /// abandon early and release their bandwidth sooner.
  double watch_fraction = 1.0;

  friend bool operator==(const Request&, const Request&) = default;
};

/// An ordered (by arrival time) sequence of requests.
struct RequestTrace {
  std::vector<Request> requests;
  double horizon = 0.0;  ///< peak-period length in seconds

  [[nodiscard]] std::size_t size() const { return requests.size(); }
  [[nodiscard]] bool empty() const { return requests.empty(); }

  /// Per-video request counts over `num_videos` videos (ids beyond the range
  /// throw).  Useful for computing empirical popularity.
  [[nodiscard]] std::vector<std::size_t> video_counts(
      std::size_t num_videos) const;

  /// True when arrival times are non-decreasing and within [0, horizon).
  [[nodiscard]] bool is_well_formed() const;
};

/// Viewer-abandonment model: with probability `completion_probability` the
/// client watches the whole video; otherwise it abandons at a uniformly
/// random point in [min_partial_fraction, 1).  The default (always
/// complete) reproduces the paper's whole-video assumption.
struct AbandonmentModel {
  double completion_probability = 1.0;
  double min_partial_fraction = 0.05;

  void validate() const;
};

/// Generation parameters for a synthetic trace.
struct TraceSpec {
  double arrival_rate = 0.0;  ///< requests per second
  double horizon = 0.0;       ///< peak-period length in seconds
  std::vector<double> popularity;  ///< video-choice distribution (rank order)
  AbandonmentModel abandonment;    ///< watch-fraction model
  /// Poisson arrival-time generation batch (poisson_arrivals_block): raw
  /// draws per block, >= 1.  Purely a throughput knob — the generated trace
  /// and the generator state afterwards are bit-identical for every value.
  std::size_t arrival_block = 256;
};

/// Generates one Poisson/Zipf trace realization.  Deterministic in `rng`.
[[nodiscard]] RequestTrace generate_trace(Rng& rng, const TraceSpec& spec);

/// Serializes a trace as lines of "arrival_time video_id" preceded by a
/// header line "vodrep-trace <n> <horizon>".
void save_trace(std::ostream& os, const RequestTrace& trace);

/// Parses the save_trace format.  Throws InvalidArgumentError on malformed
/// input.
[[nodiscard]] RequestTrace load_trace(std::istream& is);

}  // namespace vodrep
