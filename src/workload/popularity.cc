#include "src/workload/popularity.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "src/util/error.h"

namespace vodrep {

std::vector<double> zipf_popularity(std::size_t num_videos, double theta) {
  require(num_videos >= 1, "zipf_popularity: need at least one video");
  require(theta >= 0.0, "zipf_popularity: theta must be non-negative");
  std::vector<double> p(num_videos);
  double sum = 0.0;
  for (std::size_t i = 0; i < num_videos; ++i) {
    p[i] = 1.0 / std::pow(static_cast<double>(i + 1), theta);
    sum += p[i];
  }
  for (double& v : p) v /= sum;
  return p;
}

std::vector<double> uniform_popularity(std::size_t num_videos) {
  return zipf_popularity(num_videos, 0.0);
}

std::vector<double> normalized_popularity(std::vector<double> weights) {
  require(!weights.empty(), "normalized_popularity: empty weights");
  double sum = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "normalized_popularity: negative weight");
    sum += w;
  }
  require(sum > 0.0, "normalized_popularity: weights sum to zero");
  for (double& w : weights) w /= sum;
  std::sort(weights.begin(), weights.end(), std::greater<>());
  return weights;
}

bool is_popularity_vector(const std::vector<double>& p, double tolerance) {
  if (p.empty()) return false;
  double sum = 0.0;
  double prev = 1.0 + tolerance;
  for (double v : p) {
    if (v < 0.0 || v > 1.0 + tolerance) return false;
    if (v > prev + tolerance) return false;  // must be non-increasing
    prev = v;
    sum += v;
  }
  return std::fabs(sum - 1.0) <= tolerance * static_cast<double>(p.size());
}

std::size_t top_k_for_coverage(const std::vector<double>& p, double fraction) {
  require(!p.empty(), "top_k_for_coverage: empty vector");
  require(fraction >= 0.0 && fraction <= 1.0,
          "top_k_for_coverage: fraction must be in [0, 1]");
  double cumulative = 0.0;
  for (std::size_t k = 0; k < p.size(); ++k) {
    cumulative += p[k];
    if (cumulative >= fraction) return k + 1;
  }
  return p.size();
}

}  // namespace vodrep
