#include "src/hetero/hetero_cluster.h"

#include <algorithm>

#include "src/core/objective.h"
#include "src/util/error.h"
#include "src/util/units.h"

namespace vodrep {

double HeteroClusterSpec::total_bandwidth_bps() const {
  double total = 0.0;
  for (double b : bandwidth_bps) total += b;
  return total;
}

double HeteroClusterSpec::total_storage_bytes() const {
  double total = 0.0;
  for (double s : storage_bytes) total += s;
  return total;
}

std::vector<std::size_t> HeteroClusterSpec::replica_slots(
    double duration_sec, double bitrate_bps) const {
  validate();
  const double bytes = units::video_bytes(duration_sec, bitrate_bps);
  require(bytes > 0.0, "replica_slots: zero-sized replica");
  std::vector<std::size_t> slots;
  slots.reserve(storage_bytes.size());
  for (double storage : storage_bytes) {
    slots.push_back(static_cast<std::size_t>(storage / bytes));
  }
  return slots;
}

std::vector<double> HeteroClusterSpec::bandwidth_shares() const {
  validate();
  const double total = total_bandwidth_bps();
  std::vector<double> shares;
  shares.reserve(bandwidth_bps.size());
  for (double b : bandwidth_bps) shares.push_back(b / total);
  return shares;
}

void HeteroClusterSpec::validate() const {
  require(!bandwidth_bps.empty(), "HeteroClusterSpec: need a server");
  require(storage_bytes.size() == bandwidth_bps.size(),
          "HeteroClusterSpec: storage/bandwidth size mismatch");
  for (std::size_t s = 0; s < bandwidth_bps.size(); ++s) {
    require(bandwidth_bps[s] > 0.0, "HeteroClusterSpec: bad bandwidth");
    require(storage_bytes[s] > 0.0, "HeteroClusterSpec: bad storage");
  }
}

HeteroClusterSpec make_two_tier_cluster(std::size_t big,
                                        double big_bandwidth_bps,
                                        double big_storage_bytes,
                                        std::size_t small,
                                        double small_bandwidth_bps,
                                        double small_storage_bytes) {
  require(big + small >= 1, "make_two_tier_cluster: empty fleet");
  HeteroClusterSpec cluster;
  cluster.bandwidth_bps.reserve(big + small);
  cluster.storage_bytes.reserve(big + small);
  for (std::size_t s = 0; s < big; ++s) {
    cluster.bandwidth_bps.push_back(big_bandwidth_bps);
    cluster.storage_bytes.push_back(big_storage_bytes);
  }
  for (std::size_t s = 0; s < small; ++s) {
    cluster.bandwidth_bps.push_back(small_bandwidth_bps);
    cluster.storage_bytes.push_back(small_storage_bytes);
  }
  cluster.validate();
  return cluster;
}

double hetero_imbalance(const std::vector<double>& loads,
                        const std::vector<double>& bandwidth_bps) {
  require(loads.size() == bandwidth_bps.size() && !loads.empty(),
          "hetero_imbalance: size mismatch or empty input");
  std::vector<double> utilization(loads.size());
  for (std::size_t s = 0; s < loads.size(); ++s) {
    require(bandwidth_bps[s] > 0.0, "hetero_imbalance: bad bandwidth");
    utilization[s] = loads[s] / bandwidth_bps[s];
  }
  return imbalance_max_relative(utilization);
}

}  // namespace vodrep
