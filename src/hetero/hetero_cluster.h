// Heterogeneous clusters: per-server storage and outgoing bandwidth.
//
// The paper assumes N homogeneous servers; real fleets mix generations.
// This module generalizes the cluster description and the load-imbalance
// notion: on heterogeneous links the balanced state is *proportional* load
// (equal utilization l_j / B_j), not equal absolute load, so the metrics
// and the placement algorithm below work in utilization space.
#pragma once

#include <cstddef>
#include <vector>

namespace vodrep {

struct HeteroClusterSpec {
  std::vector<double> storage_bytes;   ///< per server
  std::vector<double> bandwidth_bps;   ///< per server, outgoing

  [[nodiscard]] std::size_t num_servers() const {
    return bandwidth_bps.size();
  }
  [[nodiscard]] double total_bandwidth_bps() const;
  [[nodiscard]] double total_storage_bytes() const;

  /// Per-server replica slots at a fixed encoding bit rate.
  [[nodiscard]] std::vector<std::size_t> replica_slots(
      double duration_sec, double bitrate_bps) const;

  /// Each server's share of the cluster bandwidth (sums to 1); the target
  /// load proportions for a balanced placement.
  [[nodiscard]] std::vector<double> bandwidth_shares() const;

  /// Throws InvalidArgumentError unless sizes match and all values are
  /// positive.
  void validate() const;
};

/// Convenience: a two-tier fleet of `big` servers at (big_bandwidth,
/// big_storage) followed by `small` servers at the small tier.
[[nodiscard]] HeteroClusterSpec make_two_tier_cluster(
    std::size_t big, double big_bandwidth_bps, double big_storage_bytes,
    std::size_t small, double small_bandwidth_bps,
    double small_storage_bytes);

/// Utilization-space imbalance for heterogeneous clusters: Eq. 2 applied to
/// u_j = l_j / B_j.  Equals the homogeneous Eq. 2 when all B_j are equal.
[[nodiscard]] double hetero_imbalance(const std::vector<double>& loads,
                                      const std::vector<double>& bandwidth_bps);

}  // namespace vodrep
