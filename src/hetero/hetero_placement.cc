#include "src/hetero/hetero_placement.h"

#include <algorithm>
#include <limits>

#include "src/audit/audit.h"
#include "src/core/placement.h"
#include "src/util/check.h"
#include "src/util/error.h"

namespace vodrep {

Layout weighted_greedy_place(const ReplicationPlan& plan,
                             const std::vector<double>& popularity,
                             const std::vector<double>& bandwidth_bps,
                             const std::vector<std::size_t>& capacity_slots) {
  const std::size_t n = bandwidth_bps.size();
  require(n >= 1, "weighted_greedy_place: need a server");
  require(capacity_slots.size() == n,
          "weighted_greedy_place: capacity/bandwidth size mismatch");
  for (double b : bandwidth_bps) {
    require(b > 0.0, "weighted_greedy_place: bad bandwidth");
  }
  check_placement_inputs(plan, popularity, n,
                         *std::max_element(capacity_slots.begin(),
                                           capacity_slots.end()));
  std::size_t total_slots = 0;
  for (std::size_t slots : capacity_slots) total_slots += slots;
  if (plan.total_replicas() > total_slots) {
    throw InfeasibleError("weighted_greedy_place: plan does not fit cluster");
  }

  const std::vector<double> weights = plan.weights(popularity);
  Layout layout;
  layout.assignment.resize(plan.replicas.size());
  std::vector<double> loads(n, 0.0);
  std::vector<std::size_t> stored(n, 0);

  for (std::size_t video : videos_by_weight(plan, popularity)) {
    for (std::size_t k = 0; k < plan.replicas[video]; ++k) {
      const auto& hosting = layout.assignment[video];
      std::size_t best = n;
      double best_utilization = std::numeric_limits<double>::infinity();
      for (std::size_t s = 0; s < n; ++s) {
        if (stored[s] >= capacity_slots[s]) continue;
        if (std::find(hosting.begin(), hosting.end(), s) != hosting.end()) {
          continue;
        }
        const double utilization =
            (loads[s] + weights[video]) / bandwidth_bps[s];
        if (utilization < best_utilization) {
          best_utilization = utilization;
          best = s;
        }
      }
      if (best == n) {
        throw InfeasibleError(
            "weighted_greedy_place: no feasible server for a replica");
      }
      layout.assignment[video].push_back(best);
      loads[best] += weights[video];
      ++stored[best];
    }
  }
#if VODREP_CONTRACTS_ENABLED
  {
    // Structure + plan realization via the shared auditor (the fleet-wide
    // slot maximum stands in for Eq. 4); the true per-server slot limits are
    // checked directly below.
    LayoutAuditor::Limits limits;
    limits.num_servers = n;
    limits.capacity_per_server = *std::max_element(capacity_slots.begin(),
                                                   capacity_slots.end());
    const AuditReport report =
        LayoutAuditor(limits).audit(layout, &plan, &popularity);
    VODREP_DCHECK(report.ok(), report.summary());
    for (std::size_t s = 0; s < n; ++s) {
      VODREP_DCHECK_LE(stored[s], capacity_slots[s],
                       "weighted_greedy_place: server over its slot limit");
    }
  }
#endif
  return layout;
}

}  // namespace vodrep
