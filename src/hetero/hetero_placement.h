// Bandwidth-weighted placement for heterogeneous clusters.
//
// Smallest-load-first's one-replica-per-server-per-round rule equalizes
// replica *counts*, which on a mixed fleet equalizes absolute loads and
// overdrives the slow servers.  The heterogeneous generalization drops the
// round structure and greedily places the heaviest remaining replica on the
// feasible server whose post-placement *utilization* (l_s + w) / B_s is
// smallest, so loads converge to the bandwidth proportions.  On an equal
// fleet the rule degenerates to exactly the greedy best-fit placement.
//
// The naive alternative (balance absolute loads, ignoring B_j) is the
// ablation baseline in the vodrep_hetero_cluster benchmark.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/layout.h"
#include "src/core/replication.h"

namespace vodrep {

/// Places `plan` on a cluster with per-server `bandwidth_bps` and
/// per-server replica-slot capacities.  `popularity` is the rank-ordered
/// normalized popularity vector (as for the homogeneous policies).  Throws
/// InfeasibleError when the plan cannot fit.
[[nodiscard]] Layout weighted_greedy_place(
    const ReplicationPlan& plan, const std::vector<double>& popularity,
    const std::vector<double>& bandwidth_bps,
    const std::vector<std::size_t>& capacity_slots);

}  // namespace vodrep
